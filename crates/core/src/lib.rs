//! # treedoc-core
//!
//! A from-scratch implementation of **Treedoc**, the Commutative Replicated
//! Data Type (CRDT) for cooperative text editing described in:
//!
//! > Nuno Preguiça, Joan Manuel Marquès, Marc Shapiro, Mihai Leția.
//! > *A commutative replicated data type for cooperative editing.*
//! > 29th IEEE International Conference on Distributed Computing Systems
//! > (ICDCS 2009), pp. 395–403.
//!
//! A CRDT is a replicated data type whose concurrent operations commute, so
//! that replicas applying the same set of operations in any order compatible
//! with happened-before converge without any concurrency control.
//!
//! Treedoc realises a shared *sequence* (an edit buffer). Each atom (a
//! character, line or paragraph) is addressed by a **position identifier**
//! ([`PosId`]) drawn from a dense, totally ordered space implemented as paths
//! in an *extended binary tree*:
//!
//! * interior tree structure gives short, prefix-style identifiers,
//! * each tree position (a *major node*) may hold several *mini-nodes*
//!   created by concurrent inserts, disambiguated by a [`Disambiguator`],
//! * identifiers are ordered by an infix walk of the tree (§3.1 of the paper),
//! * new identifiers can always be allocated strictly between two existing
//!   ones (density), using Algorithm 1 of the paper ([`alloc`]),
//! * the tree can be rebalanced and compacted with `explode` / `flatten`
//!   (Algorithm 2, [`flatten`]), in the best case falling back to a plain
//!   array with zero metadata overhead.
//!
//! Two disambiguator designs from §3.3 are provided:
//!
//! * [`Udis`] — *(counter, site)* pairs; globally unique, deleted nodes can be
//!   discarded immediately (no tombstones),
//! * [`Sdis`] — site identifier only; cheaper per node, but deleted nodes must
//!   be kept as tombstones until a structural clean-up removes them.
//!
//! The user-facing entry point is [`Treedoc`], a single replica of the shared
//! buffer. Local edits return [`Op`] values that are shipped to the other
//! replicas (in causal order — see the `treedoc-replication` crate) and
//! applied there with [`Treedoc::apply`].
//!
//! ```
//! use treedoc_core::{Treedoc, Sdis, SiteId};
//!
//! let mut alice = Treedoc::<char, Sdis>::new(SiteId::from_u64(1));
//! let mut bob = Treedoc::<char, Sdis>::new(SiteId::from_u64(2));
//!
//! // Alice types "abc"; the ops are replayed at Bob's replica.
//! let ops: Vec<_> = "abc".chars().enumerate()
//!     .map(|(i, c)| alice.local_insert(i, c).unwrap())
//!     .collect();
//! for op in &ops { bob.apply(op).unwrap(); }
//!
//! // Concurrent edits at the same place commute.
//! let a = alice.local_insert(1, 'X').unwrap(); // a X b c
//! let b = bob.local_insert(1, 'Y').unwrap();   // a Y b c
//! alice.apply(&b).unwrap();
//! bob.apply(&a).unwrap();
//! assert_eq!(alice.to_string(), bob.to_string());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod arena;
pub mod atom;
pub mod codec;
pub mod disambiguator;
pub mod doc;
pub mod error;
pub mod flatten;
pub mod hash;
pub mod node;
pub mod ops;
pub mod path;
pub mod refpath;
pub mod run;
pub mod site;
pub mod stats;
pub mod storage;
pub mod tree;

pub use arena::PathArena;
pub use atom::{Atom, Granularity};
pub use codec::{WireAtom, WireDis, WirePayload, WIRE_MIN_VERSION, WIRE_VERSION};
pub use disambiguator::{DisSource, Disambiguator, HasSource, Sdis, SdisSource, Udis, UdisSource};
pub use doc::{Treedoc, TreedocConfig};
pub use error::{Error, Result};
pub use flatten::{explode, FlattenOutcome};
pub use hash::{combine_hashes, content_hash64, crc32, ContentHash, Hasher64, DIGEST_BASE};
pub use node::{Content, MajorNode, MiniNode};
pub use ops::{Op, OpKind};
pub use path::{PathElem, PosId, Side};
pub use refpath::RefPosId;
pub use run::{cell_hash, spine_step, spine_successor, RunTree};
pub use site::SiteId;
pub use stats::{DocStats, MemoryModel, PosIdStats};
pub use storage::{Representation, StorageKind};
pub use tree::Tree;
