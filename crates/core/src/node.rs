//! Nodes of the extended binary tree (§3.1).
//!
//! Every *position* of the binary tree holds a **major node**
//! ([`MajorNode`]). A major node has
//!
//! * a *plain atom slot* — the disambiguator-free slot used by single-user
//!   documents and by flattened (compacted) regions,
//! * a list of **mini-nodes** ([`MiniNode`]) — one per concurrent insert that
//!   targeted this position, told apart and ordered by their disambiguator,
//! * two plain children (the left and right major nodes of the binary tree).
//!
//! Each mini-node additionally owns its *own* pair of children: when an atom
//! is inserted between two mini-siblings the new node must become a child of
//! a specific mini-node (Algorithm 1, line 6), so those subtrees are kept in
//! a namespace separate from the major node's plain children.
//!
//! Nodes cache the number of live atoms and of occupied slots in their
//! subtree, which makes index-based lookups and the statistics of §5
//! logarithmic rather than linear.

use serde::{Deserialize, Serialize};

use crate::disambiguator::Disambiguator;
use crate::path::Side;

/// The content of an atom slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Content<A> {
    /// No slot exists at this position (nothing was ever inserted here, or a
    /// UDIS node was discarded).
    Absent,
    /// A live atom.
    Live(A),
    /// A deleted atom whose node must be kept (SDIS, §3.3.2): the atom itself
    /// has been discarded but the identifier stays occupied.
    Tombstone,
    /// A structural node without an atom: either a non-leaf UDIS node whose
    /// atom was discarded but which still has descendants, or an ancestor
    /// re-created while replaying an insert whose original ancestors were
    /// concurrently discarded (§3.3.1).
    Ghost,
}

impl<A> Content<A> {
    /// `true` when the slot holds a live atom.
    pub fn is_live(&self) -> bool {
        matches!(self, Content::Live(_))
    }

    /// `true` when the slot exists at all (live, tombstone or ghost).
    pub fn is_present(&self) -> bool {
        !matches!(self, Content::Absent)
    }

    /// `true` for a tombstone.
    pub fn is_tombstone(&self) -> bool {
        matches!(self, Content::Tombstone)
    }

    /// Returns the live atom, if any.
    pub fn live(&self) -> Option<&A> {
        match self {
            Content::Live(a) => Some(a),
            _ => None,
        }
    }

    /// Takes the live atom out, leaving the given replacement content.
    pub fn take_live(&mut self, replacement: Content<A>) -> Option<A> {
        if self.is_live() {
            match std::mem::replace(self, replacement) {
                Content::Live(a) => Some(a),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }
}

/// A mini-node: one concurrent insert at a given tree position (§3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiniNode<A, D> {
    /// The disambiguator that orders this mini-node among its mini-siblings.
    pub(crate) dis: D,
    /// The atom slot.
    pub(crate) content: Content<A>,
    /// This mini-node's own left child (used only after inserts between
    /// mini-siblings).
    pub(crate) left: Option<Box<MajorNode<A, D>>>,
    /// This mini-node's own right child.
    pub(crate) right: Option<Box<MajorNode<A, D>>>,
    /// Live atoms in this mini-node's subtree (including itself).
    pub(crate) live: usize,
    /// Occupied slots in this mini-node's subtree (including itself).
    pub(crate) total: usize,
}

impl<A, D: Disambiguator> MiniNode<A, D> {
    /// Creates a mini-node with the given content and no children.
    pub fn new(dis: D, content: Content<A>) -> Self {
        let live = usize::from(content.is_live());
        let total = usize::from(content.is_present());
        MiniNode {
            dis,
            content,
            left: None,
            right: None,
            live,
            total,
        }
    }

    /// The disambiguator.
    pub fn dis(&self) -> &D {
        &self.dis
    }

    /// The atom slot content.
    pub fn content(&self) -> &Content<A> {
        &self.content
    }

    /// The child major node on the given side, if present.
    pub fn child(&self, side: Side) -> Option<&MajorNode<A, D>> {
        match side {
            Side::Left => self.left.as_deref(),
            Side::Right => self.right.as_deref(),
        }
    }

    pub(crate) fn child_mut(&mut self, side: Side) -> Option<&mut MajorNode<A, D>> {
        match side {
            Side::Left => self.left.as_deref_mut(),
            Side::Right => self.right.as_deref_mut(),
        }
    }

    pub(crate) fn child_or_create(&mut self, side: Side) -> &mut MajorNode<A, D> {
        let slot = match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        };
        slot.get_or_insert_with(|| Box::new(MajorNode::empty()))
    }

    /// Live atoms in this mini-node's subtree (including itself).
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Occupied slots in this mini-node's subtree (including itself).
    pub fn total_count(&self) -> usize {
        self.total
    }

    /// Recomputes the cached counters from the children's counters.
    pub(crate) fn recount(&mut self) {
        let child_live =
            self.left.as_ref().map_or(0, |c| c.live) + self.right.as_ref().map_or(0, |c| c.live);
        let child_total =
            self.left.as_ref().map_or(0, |c| c.total) + self.right.as_ref().map_or(0, |c| c.total);
        self.live = child_live + usize::from(self.content.is_live());
        self.total = child_total + usize::from(self.content.is_present());
    }

    /// Drops empty child major nodes.
    pub(crate) fn prune_children(&mut self) {
        if self.left.as_ref().is_some_and(|c| c.is_empty_structure()) {
            self.left = None;
        }
        if self.right.as_ref().is_some_and(|c| c.is_empty_structure()) {
            self.right = None;
        }
    }
}

/// A major node: everything stored at one position of the binary tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MajorNode<A, D> {
    /// The disambiguator-free atom slot (single-user documents, flattened
    /// regions).
    pub(crate) plain: Content<A>,
    /// Mini-nodes created by concurrent inserts, sorted by disambiguator.
    pub(crate) minis: Vec<MiniNode<A, D>>,
    /// Plain left child.
    pub(crate) left: Option<Box<MajorNode<A, D>>>,
    /// Plain right child.
    pub(crate) right: Option<Box<MajorNode<A, D>>>,
    /// Live atoms in this major node's whole subtree.
    pub(crate) live: usize,
    /// Occupied slots in this major node's whole subtree.
    pub(crate) total: usize,
    /// Last revision (as counted by the embedding document) in which this
    /// subtree was modified; used by the cold-region flatten heuristic (§5.1).
    pub(crate) hot_rev: u64,
}

impl<A, D: Disambiguator> Default for MajorNode<A, D> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<A, D: Disambiguator> MajorNode<A, D> {
    /// An empty major node: no atom, no minis, no children.
    pub fn empty() -> Self {
        MajorNode {
            plain: Content::Absent,
            minis: Vec::new(),
            left: None,
            right: None,
            live: 0,
            total: 0,
            hot_rev: 0,
        }
    }

    /// A major node holding a single plain (disambiguator-free) atom.
    pub fn with_plain_atom(atom: A) -> Self {
        MajorNode {
            plain: Content::Live(atom),
            minis: Vec::new(),
            left: None,
            right: None,
            live: 1,
            total: 1,
            hot_rev: 0,
        }
    }

    /// The plain atom slot.
    pub fn plain(&self) -> &Content<A> {
        &self.plain
    }

    /// The mini-nodes, in disambiguator order.
    pub fn minis(&self) -> &[MiniNode<A, D>] {
        &self.minis
    }

    /// The plain child on the given side, if present.
    pub fn child(&self, side: Side) -> Option<&MajorNode<A, D>> {
        match side {
            Side::Left => self.left.as_deref(),
            Side::Right => self.right.as_deref(),
        }
    }

    pub(crate) fn child_mut(&mut self, side: Side) -> Option<&mut MajorNode<A, D>> {
        match side {
            Side::Left => self.left.as_deref_mut(),
            Side::Right => self.right.as_deref_mut(),
        }
    }

    pub(crate) fn child_or_create(&mut self, side: Side) -> &mut MajorNode<A, D> {
        let slot = match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        };
        slot.get_or_insert_with(|| Box::new(MajorNode::empty()))
    }

    /// Finds the mini-node with the given disambiguator.
    pub fn find_mini(&self, dis: &D) -> Option<&MiniNode<A, D>> {
        self.minis
            .binary_search_by(|m| m.dis.cmp(dis))
            .ok()
            .map(|i| &self.minis[i])
    }

    pub(crate) fn find_mini_mut(&mut self, dis: &D) -> Option<&mut MiniNode<A, D>> {
        self.minis
            .binary_search_by(|m| m.dis.cmp(dis))
            .ok()
            .map(move |i| &mut self.minis[i])
    }

    /// Finds the mini-node with the given disambiguator, creating an empty
    /// (ghost) one if it does not exist. Keeps the list sorted.
    pub(crate) fn find_mini_or_create(&mut self, dis: &D) -> &mut MiniNode<A, D> {
        match self.minis.binary_search_by(|m| m.dis.cmp(dis)) {
            Ok(i) => &mut self.minis[i],
            Err(i) => {
                self.minis
                    .insert(i, MiniNode::new(dis.clone(), Content::Ghost));
                &mut self.minis[i]
            }
        }
    }

    /// Removes the mini-node with the given disambiguator, returning it.
    pub(crate) fn remove_mini(&mut self, dis: &D) -> Option<MiniNode<A, D>> {
        match self.minis.binary_search_by(|m| m.dis.cmp(dis)) {
            Ok(i) => Some(self.minis.remove(i)),
            Err(_) => None,
        }
    }

    /// Live atoms in this subtree.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Occupied slots in this subtree.
    pub fn total_count(&self) -> usize {
        self.total
    }

    /// Last revision in which this subtree was modified.
    pub fn hot_rev(&self) -> u64 {
        self.hot_rev
    }

    /// `true` when the node carries no content and no descendants at all, so
    /// the parent may drop it.
    pub(crate) fn is_empty_structure(&self) -> bool {
        self.total == 0 && self.minis.is_empty() && self.left.is_none() && self.right.is_none()
    }

    /// Recomputes the cached counters from the children and mini-nodes.
    pub(crate) fn recount(&mut self) {
        let mut live = usize::from(self.plain.is_live());
        let mut total = usize::from(self.plain.is_present());
        for m in &self.minis {
            live += m.live;
            total += m.total;
        }
        if let Some(c) = &self.left {
            live += c.live;
            total += c.total;
        }
        if let Some(c) = &self.right {
            live += c.live;
            total += c.total;
        }
        self.live = live;
        self.total = total;
    }

    /// Drops empty children and removable mini-nodes.
    pub(crate) fn prune(&mut self) {
        if self.left.as_ref().is_some_and(|c| c.is_empty_structure()) {
            self.left = None;
        }
        if self.right.as_ref().is_some_and(|c| c.is_empty_structure()) {
            self.right = None;
        }
        self.minis.retain(|m| {
            !(matches!(m.content, Content::Absent | Content::Ghost)
                && m.left.is_none()
                && m.right.is_none())
        });
    }

    /// Height of the subtree rooted here (number of levels; an empty node has
    /// height 1 once it exists). Mini-nodes sit on their major node's level;
    /// their private children start a new level, like the plain children.
    ///
    /// Walks with an explicit stack: a degenerate (skinny) tree is as deep as
    /// the document is long, and document statistics must not blow the call
    /// stack on pathological inputs.
    pub fn height(&self) -> usize {
        let mut best = 0usize;
        let mut stack: Vec<(&MajorNode<A, D>, usize)> = vec![(self, 1)];
        while let Some((node, level)) = stack.pop() {
            best = best.max(level);
            let majors = [node.left.as_deref(), node.right.as_deref()];
            let minis = node
                .minis
                .iter()
                .flat_map(|m| [m.left.as_deref(), m.right.as_deref()]);
            for child in majors.into_iter().chain(minis).flatten() {
                stack.push((child, level + 1));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::Sdis;
    use crate::site::SiteId;

    fn d(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    #[test]
    fn content_predicates() {
        assert!(Content::Live(1).is_live());
        assert!(Content::Live(1).is_present());
        assert!(Content::<u32>::Tombstone.is_present());
        assert!(Content::<u32>::Tombstone.is_tombstone());
        assert!(Content::<u32>::Ghost.is_present());
        assert!(!Content::<u32>::Absent.is_present());
        assert_eq!(Content::Live(7).live(), Some(&7));
        assert_eq!(Content::<u32>::Ghost.live(), None);
    }

    #[test]
    fn take_live_replaces_content() {
        let mut c = Content::Live(5u32);
        assert_eq!(c.take_live(Content::Tombstone), Some(5));
        assert!(c.is_tombstone());
        assert_eq!(c.take_live(Content::Absent), None);
        assert!(c.is_tombstone(), "non-live content is left untouched");
    }

    #[test]
    fn mini_node_counts() {
        let mut m: MiniNode<u32, Sdis> = MiniNode::new(d(1), Content::Live(1));
        assert_eq!(m.live_count(), 1);
        assert_eq!(m.total_count(), 1);
        m.content = Content::Tombstone;
        m.recount();
        assert_eq!(m.live_count(), 0);
        assert_eq!(m.total_count(), 1);
    }

    #[test]
    fn major_node_counts_include_minis_and_children() {
        let mut major: MajorNode<u32, Sdis> = MajorNode::with_plain_atom(10);
        major.minis.push(MiniNode::new(d(1), Content::Live(11)));
        major.minis.push(MiniNode::new(d(2), Content::Tombstone));
        let child = MajorNode::with_plain_atom(12);
        major.left = Some(Box::new(child));
        major.recount();
        assert_eq!(major.live_count(), 3);
        assert_eq!(major.total_count(), 4);
    }

    #[test]
    fn find_mini_or_create_keeps_order() {
        let mut major: MajorNode<u32, Sdis> = MajorNode::empty();
        major.find_mini_or_create(&d(5)).content = Content::Live(1);
        major.find_mini_or_create(&d(2)).content = Content::Live(2);
        major.find_mini_or_create(&d(9)).content = Content::Live(3);
        let order: Vec<u64> = major.minis.iter().map(|m| m.dis.site().as_u64()).collect();
        assert_eq!(order, vec![2, 5, 9]);
        // Looking one of them up again does not duplicate it.
        major.find_mini_or_create(&d(5));
        assert_eq!(major.minis.len(), 3);
        assert!(major.find_mini(&d(5)).is_some());
        assert!(major.find_mini(&d(7)).is_none());
    }

    #[test]
    fn remove_mini() {
        let mut major: MajorNode<u32, Sdis> = MajorNode::empty();
        major.find_mini_or_create(&d(1)).content = Content::Live(1);
        major.find_mini_or_create(&d(2)).content = Content::Live(2);
        assert!(major.remove_mini(&d(1)).is_some());
        assert!(major.remove_mini(&d(1)).is_none());
        assert_eq!(major.minis.len(), 1);
    }

    #[test]
    fn prune_drops_empty_structures() {
        let mut major: MajorNode<u32, Sdis> = MajorNode::empty();
        major.left = Some(Box::new(MajorNode::empty()));
        major.right = Some(Box::new(MajorNode::with_plain_atom(1)));
        major.minis.push(MiniNode::new(d(1), Content::Ghost));
        major.prune();
        assert!(major.left.is_none(), "empty child should be pruned");
        assert!(major.right.is_some(), "non-empty child must stay");
        assert!(
            major.minis.is_empty(),
            "childless ghost mini should be pruned"
        );
    }

    #[test]
    fn height_counts_levels() {
        let mut major: MajorNode<u32, Sdis> = MajorNode::with_plain_atom(1);
        assert_eq!(major.height(), 1);
        major.child_or_create(Side::Left).plain = Content::Live(2);
        major
            .child_or_create(Side::Left)
            .child_or_create(Side::Right)
            .plain = Content::Live(3);
        assert_eq!(major.height(), 3);
    }

    #[test]
    fn height_counts_mini_children_one_level_down() {
        let mut major: MajorNode<u32, Sdis> = MajorNode::with_plain_atom(1);
        let mini = MiniNode::new(d(1), Content::Live(2));
        major.minis.push(mini);
        assert_eq!(major.height(), 1, "minis share their major node's level");
        major.minis[0].child_or_create(Side::Right).plain = Content::Live(3);
        assert_eq!(major.height(), 2);
    }

    #[test]
    fn deep_skinny_tree_height_does_not_blow_the_stack() {
        // A degenerate left chain as deep as a long document: the recursive
        // height() this replaces needed one call frame per level and
        // overflowed the default test-thread stack well before this depth.
        const DEPTH: usize = 200_000;
        let mut root: MajorNode<u32, Sdis> = MajorNode::with_plain_atom(0);
        {
            let mut node = &mut root;
            for _ in 1..DEPTH {
                node = node.child_or_create(Side::Left);
            }
            node.plain = Content::Live(1);
        }
        assert_eq!(root.height(), DEPTH);

        // Tear the chain down level by level: Rust's generated drop glue is
        // itself recursive and would overflow on a chain this deep.
        let mut cursor = root.left.take();
        while let Some(mut boxed) = cursor {
            cursor = boxed.left.take();
        }
    }

    #[test]
    fn empty_structure_detection() {
        let mut major: MajorNode<u32, Sdis> = MajorNode::empty();
        assert!(major.is_empty_structure());
        major.plain = Content::Ghost;
        major.recount();
        assert!(!major.is_empty_structure());
    }
}
