//! Site identifiers.
//!
//! Every replica (site) participating in a cooperative editing session is
//! identified by a [`SiteId`]. The paper (§3.3.2) considers two encodings:
//! a globally unique 6-byte identifier (e.g. a MAC address) and, in systems
//! with known membership, a compact small integer. We store the full 6-byte
//! form and additionally expose a compact constructor; the *accounted* size
//! used by the overhead model follows the paper's evaluation (§5): 6 bytes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of bytes of a site identifier, as accounted in the paper's
/// evaluation ("We use 6 bytes for site identifiers in both UDIS and SDIS").
pub const SITE_ID_BYTES: usize = 6;

/// A globally unique identifier for a replica (site).
///
/// Ordered lexicographically; the ordering is only used to break ties between
/// concurrent inserts (via the disambiguator order) and carries no semantic
/// meaning.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId([u8; SITE_ID_BYTES]);

impl SiteId {
    /// Builds a site identifier from raw bytes (e.g. a MAC address).
    pub const fn from_bytes(bytes: [u8; SITE_ID_BYTES]) -> Self {
        SiteId(bytes)
    }

    /// Builds a site identifier from a small integer, as used in systems with
    /// known membership (§3.3.2 alternative (2)). The integer is stored
    /// big-endian in the low-order bytes so that numeric order and
    /// lexicographic byte order coincide.
    pub const fn from_u64(n: u64) -> Self {
        let b = n.to_be_bytes();
        SiteId([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Returns the raw bytes of the identifier.
    pub const fn as_bytes(&self) -> &[u8; SITE_ID_BYTES] {
        &self.0
    }

    /// Returns the identifier as an integer (the inverse of [`from_u64`]
    /// for values that fit in 48 bits).
    ///
    /// [`from_u64`]: SiteId::from_u64
    pub fn as_u64(&self) -> u64 {
        let mut b = [0u8; 8];
        b[2..].copy_from_slice(&self.0);
        u64::from_be_bytes(b)
    }

    /// Size in bytes used by the paper's overhead accounting.
    pub const fn accounted_bytes() -> usize {
        SITE_ID_BYTES
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SiteId({})", self.as_u64())
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.as_u64())
    }
}

impl From<u64> for SiteId {
    fn from(n: u64) -> Self {
        SiteId::from_u64(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_round_trips() {
        for n in [0u64, 1, 42, 0xFFFF, 0xFFFF_FFFF_FFFF] {
            assert_eq!(SiteId::from_u64(n).as_u64(), n);
        }
    }

    #[test]
    fn numeric_order_matches_byte_order() {
        let ids: Vec<SiteId> = [0u64, 1, 2, 255, 256, 65_535, 1 << 40]
            .iter()
            .map(|&n| SiteId::from_u64(n))
            .collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "{:?} should be < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn display_and_debug() {
        let s = SiteId::from_u64(7);
        assert_eq!(s.to_string(), "s7");
        assert_eq!(format!("{s:?}"), "SiteId(7)");
    }

    #[test]
    fn from_bytes_preserves_bytes() {
        let raw = [1, 2, 3, 4, 5, 6];
        assert_eq!(SiteId::from_bytes(raw).as_bytes(), &raw);
    }

    #[test]
    fn accounted_size_matches_paper() {
        assert_eq!(SiteId::accounted_bytes(), 6);
    }
}
