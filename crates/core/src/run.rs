//! Run-coalesced document storage.
//!
//! The per-atom [`Tree`] spends one heap node (a major
//! node plus a mini-node) on every atom, so a sequential typing burst of `n`
//! characters costs `n` allocations, `n` full identifiers and `O(depth)`
//! pointer chasing per edit. But Algorithm 1 of the paper makes those bursts
//! *structurally regular*: each locally typed character extends a spine of
//! single-child nodes whose disambiguators count up by one (UDIS) or repeat
//! (SDIS). A whole burst is describable by its first identifier alone.
//!
//! [`RunTree`] exploits that: contiguous same-site sequential insertions are
//! stored as one [`Run`] — a shared [`PosId`] prefix, an offset range and a
//! live bitmap — inside a small-arity balanced tree keyed by live-count
//! metrics. Inserts and deletes split runs; neighbouring edits re-coalesce
//! through the runs' private `try_extend_back` / `try_extend_front`. Reads
//! (`atom_at`, `stats`, `height`) descend by cached aggregates instead of
//! walking per-atom nodes.
//!
//! The store round-trips losslessly with the per-atom tree through
//! [`RunTree::from_tree`] / [`RunTree::to_tree`], which is also how the
//! structural algorithms that genuinely need node-level surgery (cold-region
//! discovery) keep a single source of truth.

use std::cmp::Ordering;
use std::mem;

use crate::atom::Atom;
use crate::disambiguator::Disambiguator;
use crate::error::{Error, Result};
use crate::hash::{digest_merge, digest_pow, Hasher64, DIGEST_BASE};
use crate::node::Content;
use crate::path::{PathElem, PosId, Side};
use crate::stats::{DocStats, PosIdStats};
use crate::tree::Tree;

/// Maximum runs per leaf and children per internal node of the run tree.
pub const ARITY: usize = 8;

/// Maximum cells a [`Pattern::Packed`] run will hold before refusing to grow.
const PACKED_MAX: usize = 64;

/// Depth of the complete tree [`crate::flatten::explode`] builds for `len`
/// atoms: `ceil(log2(len + 1))`.
fn explode_depth(len: usize) -> usize {
    (usize::BITS - len.leading_zeros()) as usize
}

/// Recognises one step of an Algorithm-1 append/prepend chain: returns
/// `Some(side)` when `next` is exactly the identifier a sequential local
/// insert on `side` of `prev` would have produced — `prev`'s final mini-node
/// plainified, one more branch on `side`, and the successor disambiguator.
pub fn spine_step<D: Disambiguator>(prev: &PosId<D>, next: &PosId<D>) -> Option<Side> {
    let a = prev.depth();
    if a == 0 || next.depth() != a + 1 {
        return None;
    }
    let prev_dis = prev.last_dis()?;
    let next_dis = next.last_dis()?;
    if *next_dis != prev_dis.sequential_next()? {
        return None;
    }
    // prev's last element must appear plainified at the same index in next,
    // below an identical interior prefix: next's parent is prev's major
    // path. Chunked identifiers make this an O(chunks) compare (a long
    // shared plain spine is one segment equality), not an O(depth) walk.
    if next.parent()? != prev.major_path() {
        return None;
    }
    next.last_side()
}

/// The inverse of [`spine_step`]: the identifier a sequential local insert
/// on `side` of `prev` produces — `prev`'s final mini-node plainified, one
/// more branch on `side`, and the successor disambiguator. `None` when
/// `prev` cannot anchor a spine (root, no final mini-node, or disambiguator
/// overflow). `spine_step(prev, &spine_successor(prev, side)?) == Some(side)`
/// always holds, which is what lets the wire codec ship a run continuation
/// as a single side bit and reconstruct the identifier at the receiver.
pub fn spine_successor<D: Disambiguator>(prev: &PosId<D>, side: Side) -> Option<PosId<D>> {
    let next_dis = prev.last_dis()?.sequential_next()?;
    Some(prev.major_path().child_mini(side, next_dis))
}

/// Identifier of the cell at growth `g` along the spine anchored at
/// `anchor` on `side` (`g == 0` is the anchor itself).
fn spine_cell_id<D: Disambiguator>(anchor: &PosId<D>, side: Side, g: usize) -> PosId<D> {
    if g == 0 {
        return anchor.clone();
    }
    debug_assert!(anchor.depth() > 0, "spine anchors end in a mini-node");
    let dis = anchor
        .last_dis()
        .expect("spine anchors end in a mini-node")
        .sequential_nth(g)
        .expect("spine growth overflow");
    // Constant chunk count however deep the spine: the shared major path,
    // one merged plains segment, one mini tip.
    anchor
        .major_path()
        .extend_plains(side, g - 1)
        .child_mini(side, dis)
}

/// Branch sides from the root of a complete tree of the given `depth` to its
/// `k`-th node in infix order (`k` counts from 0).
fn infix_path(depth: usize, k: usize) -> Vec<Side> {
    let mut path = Vec::new();
    let mut depth = depth;
    let mut k = k;
    loop {
        debug_assert!(depth > 0, "infix index out of range");
        let left_cap = (1usize << (depth - 1)) - 1;
        match k.cmp(&left_cap) {
            Ordering::Less => path.push(Side::Left),
            Ordering::Equal => return path,
            Ordering::Greater => {
                path.push(Side::Right);
                k -= left_cap + 1;
            }
        }
        depth -= 1;
    }
}

/// Length of [`infix_path`] without allocating it.
fn infix_len(depth: usize, k: usize) -> usize {
    let mut len = 0;
    let mut depth = depth;
    let mut k = k;
    loop {
        debug_assert!(depth > 0, "infix index out of range");
        let left_cap = (1usize << (depth - 1)) - 1;
        match k.cmp(&left_cap) {
            Ordering::Less => len += 1,
            Ordering::Equal => return len,
            Ordering::Greater => {
                len += 1;
                k -= left_cap + 1;
            }
        }
        depth -= 1;
    }
}

/// Summed / maxed measurements cached per run and per tree node, sufficient
/// to answer `stats()`, `height()` and live-index descent in `O(1)` per
/// level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Agg {
    /// Live atoms.
    live: usize,
    /// Occupied slots (live + tombstone + ghost).
    total: usize,
    /// Tombstones.
    tombstones: usize,
    /// Ghosts.
    ghosts: usize,
    /// Sum of identifier sizes in bits over all occupied slots.
    bits_total: usize,
    /// Sum of identifier sizes in bits over live slots.
    bits_live: usize,
    /// Largest identifier size in bits.
    bits_max: usize,
    /// Deepest identifier (tree levels are `depth_max + 1`).
    depth_max: usize,
    /// Sum of live atoms' content bytes.
    atom_bytes: usize,
    /// Incremental merkle digest of the covered cells in document order:
    /// `Σ cell_hash_i · B^(total-1-i) (mod 2^64)` with `B =`
    /// [`DIGEST_BASE`]. Independent of run boundaries and tree shape, so
    /// converged replicas agree on it however their stores fragmented; see
    /// [`crate::hash`].
    digest: u64,
}

impl Agg {
    fn merge(&mut self, other: &Agg) {
        self.live += other.live;
        self.total += other.total;
        self.tombstones += other.tombstones;
        self.ghosts += other.ghosts;
        self.bits_total += other.bits_total;
        self.bits_live += other.bits_live;
        self.bits_max = self.bits_max.max(other.bits_max);
        self.depth_max = self.depth_max.max(other.depth_max);
        self.atom_bytes += other.atom_bytes;
        self.digest = digest_merge(self.digest, other.digest, other.total as u64);
    }

    fn add_cell<A: Atom>(&mut self, bits: usize, depth: usize, content: &Content<A>) {
        self.total += 1;
        self.bits_total += bits;
        self.bits_max = self.bits_max.max(bits);
        self.depth_max = self.depth_max.max(depth);
        match content {
            Content::Live(a) => {
                self.live += 1;
                self.bits_live += bits;
                self.atom_bytes += a.content_bytes();
            }
            Content::Tombstone => self.tombstones += 1,
            Content::Ghost => self.ghosts += 1,
            Content::Absent => unreachable!("run cells are always occupied"),
        }
    }
}

/// Feeds one path element into a streaming hasher: the side bit, then a
/// presence marker and the disambiguator's canonical bytes.
fn feed_parts<D: Disambiguator>(h: &mut Hasher64, side: Side, dis: Option<&D>) {
    h.write_u8(side.bit());
    match dis {
        None => h.write_u8(0),
        Some(d) => {
            h.write_u8(1);
            d.feed(h);
        }
    }
}

/// Finishes a cell hash from a hasher already holding the cell's identifier
/// bytes: a content tag, plus the atom bytes for live cells.
fn finish_cell_hash<A: Atom>(mut h: Hasher64, content: &Content<A>) -> u64 {
    match content {
        Content::Live(a) => {
            h.write_u8(1);
            a.feed(&mut h);
        }
        Content::Tombstone => h.write_u8(2),
        Content::Ghost => h.write_u8(3),
        Content::Absent => unreachable!("run cells are always occupied"),
    }
    h.state()
}

/// Hash of one stored cell: its full identifier, a content tag and (for live
/// cells) the atom bytes. Depends only on the cell itself — never on how the
/// store groups cells into runs or tree nodes.
pub fn cell_hash<A: Atom, D: Disambiguator>(id: &PosId<D>, content: &Content<A>) -> u64 {
    let mut h = Hasher64::new();
    id.visit_elems_from(0, |side, dis| feed_parts(&mut h, side, dis));
    finish_cell_hash(h, content)
}

/// How a run derives the identifier of its `j`-th cell.
#[derive(Debug, Clone)]
enum Pattern<D> {
    /// An Algorithm-1 append (`side == Right`) or prepend (`side == Left`)
    /// chain. The anchor is the *shallowest* cell; growth `g` cells extend
    /// below it on `side`, with disambiguators `sequential_nth(g)` of the
    /// anchor's. For `Right` the anchor is first in document order, for
    /// `Left` it is last.
    Spine { anchor: PosId<D>, side: Side },
    /// Consecutive infix slots of a complete plain subtree of the given
    /// `depth` rooted just below `base` — the shape `flatten` produces. Cell
    /// `j` sits at infix index `start + j`.
    Exploded {
        base: PosId<D>,
        depth: usize,
        start: usize,
    },
    /// Arbitrary explicit identifiers (concurrent-edit shrapnel); strictly
    /// increasing in document order.
    Packed { ids: Vec<PosId<D>> },
}

/// One coalesced run: a cell-identifier pattern plus the cells' contents in
/// document order, a live bitmap, cached aggregates and the revision of the
/// most recent edit that touched the run.
#[derive(Debug, Clone)]
pub struct Run<A, D> {
    pattern: Pattern<D>,
    cells: Vec<Content<A>>,
    live_bits: Vec<u64>,
    agg: Agg,
    hot_rev: u64,
    /// Streaming-hash bookkeeping for `O(1)` digest maintenance on the
    /// append fast path: for a `Right` spine, the [`Hasher64`] state holding
    /// the identifier prefix of the *next* appended cell; for an `Exploded`
    /// run, the state after the base identifier. Unused (0) otherwise.
    aux_state: u64,
}

fn bits_push(bits: &mut Vec<u64>, index: usize, live: bool) {
    let word = index / 64;
    if word == bits.len() {
        bits.push(0);
    }
    if live {
        bits[word] |= 1u64 << (index % 64);
    }
}

fn bits_set(bits: &mut [u64], index: usize, live: bool) {
    let mask = 1u64 << (index % 64);
    if live {
        bits[index / 64] |= mask;
    } else {
        bits[index / 64] &= !mask;
    }
}

impl<A: Atom, D: Disambiguator> Run<A, D> {
    /// A run holding a single explicitly identified cell.
    fn singleton(id: PosId<D>, content: Content<A>, rev: u64) -> Self {
        let mut run = Run {
            pattern: Pattern::Packed { ids: vec![id] },
            cells: vec![content],
            live_bits: Vec::new(),
            agg: Agg::default(),
            hot_rev: rev,
            aux_state: 0,
        };
        run.recompute();
        run
    }

    fn len(&self) -> usize {
        self.cells.len()
    }

    /// Identifier of the `j`-th cell in document order.
    fn cell_id(&self, j: usize) -> PosId<D> {
        match &self.pattern {
            Pattern::Spine { anchor, side } => {
                let g = match side {
                    Side::Right => j,
                    Side::Left => self.len() - 1 - j,
                };
                spine_cell_id(anchor, *side, g)
            }
            Pattern::Exploded { base, depth, start } => {
                let mut id = base.clone();
                for side in infix_path(*depth, start + j) {
                    id = id.extend_plains(side, 1);
                }
                id
            }
            Pattern::Packed { ids } => ids[j].clone(),
        }
    }

    /// Identifier size in bits of the `j`-th cell, without materialising it.
    fn cell_bits(&self, j: usize) -> usize {
        let w = D::ACCOUNTED_BYTES * 8;
        match &self.pattern {
            Pattern::Spine { anchor, side } => {
                let g = match side {
                    Side::Right => j,
                    Side::Left => self.len() - 1 - j,
                };
                anchor.depth() + g + anchor.dis_count() * w
            }
            Pattern::Exploded { base, depth, start } => {
                base.depth() + infix_len(*depth, start + j) + base.dis_count() * w
            }
            Pattern::Packed { ids } => ids[j].size_bits(),
        }
    }

    fn first_id(&self) -> PosId<D> {
        self.cell_id(0)
    }

    fn last_id(&self) -> PosId<D> {
        self.cell_id(self.len() - 1)
    }

    /// Binary-searches for `id` among the run's cells. `Ok(j)` is the cell
    /// index, `Err(j)` the insertion point.
    fn find(&self, id: &PosId<D>) -> std::result::Result<usize, usize> {
        if let Pattern::Packed { ids } = &self.pattern {
            return ids.binary_search(id);
        }
        let mut lo = 0;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.cell_id(mid).cmp(id) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Cell index of the `k`-th live cell (`k` counts from 0).
    fn select_live(&self, k: usize) -> usize {
        debug_assert!(k < self.agg.live);
        if self.agg.live == self.len() {
            return k;
        }
        let mut remaining = k;
        for (w, &word) in self.live_bits.iter().enumerate() {
            let pop = word.count_ones() as usize;
            if remaining < pop {
                let mut word = word;
                for _ in 0..remaining {
                    word &= word - 1;
                }
                return w * 64 + word.trailing_zeros() as usize;
            }
            remaining -= pop;
        }
        unreachable!("live bitmap disagrees with aggregate")
    }

    /// Rebuilds the aggregate and the live bitmap from the cells.
    fn recompute(&mut self) {
        let mut agg = Agg::default();
        self.live_bits.clear();
        let w = D::ACCOUNTED_BYTES * 8;
        match &self.pattern {
            Pattern::Spine { anchor, side } => {
                let base_bits = anchor.depth() + anchor.dis_count() * w;
                let base_depth = anchor.depth();
                let n = self.cells.len();
                for (j, c) in self.cells.iter().enumerate() {
                    let g = match side {
                        Side::Right => j,
                        Side::Left => n - 1 - j,
                    };
                    agg.add_cell(base_bits + g, base_depth + g, c);
                    bits_push(&mut self.live_bits, j, c.is_live());
                }
            }
            Pattern::Exploded { base, depth, start } => {
                let base_bits = base.depth() + base.dis_count() * w;
                let base_depth = base.depth();
                for (j, c) in self.cells.iter().enumerate() {
                    let l = infix_len(*depth, start + j);
                    agg.add_cell(base_bits + l, base_depth + l, c);
                    bits_push(&mut self.live_bits, j, c.is_live());
                }
            }
            Pattern::Packed { ids } => {
                for (j, c) in self.cells.iter().enumerate() {
                    agg.add_cell(ids[j].size_bits(), ids[j].depth(), c);
                    bits_push(&mut self.live_bits, j, c.is_live());
                }
            }
        }
        self.agg = agg;
        let mut digest = 0u64;
        let aux = self.for_each_id_state(0, self.cells.len(), &mut |j, st| {
            digest = digest
                .wrapping_mul(DIGEST_BASE)
                .wrapping_add(finish_cell_hash(st, &self.cells[j]));
        });
        self.agg.digest = digest;
        self.aux_state = aux;
    }

    /// Streams the identifier hash state of every cell in `[jlo, jhi)` in
    /// document order: calls `f(j, state)` where `state` holds cell `j`'s
    /// full identifier (content not yet fed). Spine and exploded patterns
    /// advance one shared prefix state instead of re-hashing each identifier
    /// from the root, so a full-run walk is `O(anchor depth + cells)`.
    ///
    /// Returns the [`Run::aux_state`] value for the pattern — meaningful
    /// only when the walk covered the run's full cell range.
    fn for_each_id_state(
        &self,
        jlo: usize,
        jhi: usize,
        f: &mut impl FnMut(usize, Hasher64),
    ) -> u64 {
        match &self.pattern {
            Pattern::Spine { anchor, side } => {
                let n = self.len();
                let last_side = anchor.last_side().expect("non-root anchor");
                let dis = anchor.last_dis().expect("spine anchors end in a mini-node");
                // Growth range covered by the document-order cell range.
                let (glo, ghi) = match side {
                    Side::Right => (jlo, jhi),
                    Side::Left => (n - jhi, n - jlo),
                };
                // Prefix state over elements `[0, a - 1)`: everything above
                // the anchor's final mini-node.
                let mut prefix = Hasher64::new();
                anchor
                    .parent()
                    .expect("non-root anchor")
                    .visit_elems_from(0, |s, d| feed_parts(&mut prefix, s, d));
                // `chain` is the prefix of growth `g >= 1`: the anchor with
                // its mini plainified, plus `g - 1` plain steps on `side`.
                let mut chain = prefix;
                chain.write_u8(last_side.bit());
                chain.write_u8(0);
                for _ in 1..glo.max(1) {
                    chain.write_u8(side.bit());
                    chain.write_u8(0);
                }
                let mut states: Vec<Hasher64> = Vec::new();
                for g in glo..ghi {
                    let st = if g == 0 {
                        let mut st = prefix;
                        feed_parts(&mut st, last_side, Some(dis));
                        st
                    } else {
                        let mut st = chain;
                        st.write_u8(side.bit());
                        st.write_u8(1);
                        dis.sequential_nth(g)
                            .expect("spine growth overflow")
                            .feed(&mut st);
                        chain.write_u8(side.bit());
                        chain.write_u8(0);
                        st
                    };
                    match side {
                        Side::Right => f(g, st),
                        // Document order of a prepend chain is reversed:
                        // buffer and replay below.
                        Side::Left => states.push(st),
                    }
                }
                match side {
                    Side::Right => chain.state(),
                    Side::Left => {
                        for j in jlo..jhi {
                            f(j, states[n - 1 - j - glo]);
                        }
                        0
                    }
                }
            }
            Pattern::Exploded { base, depth, start } => {
                let mut prefix = Hasher64::new();
                base.visit_elems_from(0, |s, d| feed_parts(&mut prefix, s, d));
                for j in jlo..jhi {
                    let mut st = prefix;
                    for side in infix_path(*depth, start + j) {
                        st.write_u8(side.bit());
                        st.write_u8(0);
                    }
                    f(j, st);
                }
                prefix.state()
            }
            Pattern::Packed { ids } => {
                for (j, id) in ids.iter().enumerate().take(jhi).skip(jlo) {
                    let mut st = Hasher64::new();
                    id.visit_elems_from(0, |s, d| feed_parts(&mut st, s, d));
                    f(j, st);
                }
                0
            }
        }
    }

    /// Polynomial digest of cells `[jlo, jhi)` in document order.
    fn fold_digest(&self, jlo: usize, jhi: usize) -> u64 {
        let mut digest = 0u64;
        self.for_each_id_state(jlo, jhi, &mut |j, st| {
            digest = digest
                .wrapping_mul(DIGEST_BASE)
                .wrapping_add(finish_cell_hash(st, &self.cells[j]));
        });
        digest
    }

    /// Cell index range `[jlo, jhi)` of this run's cells inside the
    /// identifier range `[lo, hi)` (`None` bounds are unbounded).
    fn range_bounds(&self, lo: Option<&PosId<D>>, hi: Option<&PosId<D>>) -> (usize, usize) {
        let at = |bound: &PosId<D>| match self.find(bound) {
            Ok(j) | Err(j) => j,
        };
        let jlo = lo.map_or(0, at);
        let jhi = hi.map_or(self.len(), at);
        (jlo, jhi)
    }

    /// Replaces the `j`-th cell's content, updating aggregates in place.
    fn set_cell(&mut self, j: usize, content: Content<A>, rev: u64) -> Content<A> {
        let bits = self.cell_bits(j);
        let old = mem::replace(&mut self.cells[j], content);
        let new = &self.cells[j];
        match &old {
            Content::Live(a) => {
                self.agg.live -= 1;
                self.agg.bits_live -= bits;
                self.agg.atom_bytes -= a.content_bytes();
            }
            Content::Tombstone => self.agg.tombstones -= 1,
            Content::Ghost => self.agg.ghosts -= 1,
            Content::Absent => unreachable!("run cells are always occupied"),
        }
        match new {
            Content::Live(a) => {
                self.agg.live += 1;
                self.agg.bits_live += bits;
                self.agg.atom_bytes += a.content_bytes();
            }
            Content::Tombstone => self.agg.tombstones += 1,
            Content::Ghost => self.agg.ghosts += 1,
            Content::Absent => unreachable!("run cells stay occupied"),
        }
        // Digest delta: swap cell `j`'s hash at its document position.
        let id = self.cell_id(j);
        let mut idh = Hasher64::new();
        id.visit_elems_from(0, |s, d| feed_parts(&mut idh, s, d));
        let h_old = finish_cell_hash(idh, &old);
        let h_new = finish_cell_hash(idh, new);
        let weight = digest_pow((self.len() - 1 - j) as u64);
        self.agg.digest = self
            .agg
            .digest
            .wrapping_add(h_new.wrapping_sub(h_old).wrapping_mul(weight));
        bits_set(&mut self.live_bits, j, new.is_live());
        self.hot_rev = self.hot_rev.max(rev);
        old
    }

    /// Appends a cell whose identifier the pattern already accounts for
    /// (`Packed` stores it explicitly; spines derive it).
    fn push_cell(&mut self, id: Option<PosId<D>>, content: Content<A>, rev: u64) {
        if let Pattern::Packed { ids } = &mut self.pattern {
            ids.push(id.expect("packed runs need explicit identifiers"));
        }
        let j = self.cells.len();
        bits_push(&mut self.live_bits, j, content.is_live());
        let bits = {
            self.cells.push(content);
            self.cell_bits(j)
        };
        let cell = self.cells.pop().expect("just pushed");
        let h = finish_cell_hash(self.push_id_state(j), &cell);
        self.agg
            .add_cell(bits, self.cell_depth_after_push(j), &cell);
        self.agg.digest = self.agg.digest.wrapping_mul(DIGEST_BASE).wrapping_add(h);
        self.cells.push(cell);
        self.hot_rev = self.hot_rev.max(rev);
    }

    /// Identifier hash state of a cell being pushed at index `j`, advancing
    /// [`Run::aux_state`] for `Right` spines. A `Left` spine returns a
    /// placeholder — every left-spine push site recomputes immediately
    /// after, because the push also perturbs document order.
    fn push_id_state(&mut self, j: usize) -> Hasher64 {
        match &self.pattern {
            Pattern::Spine {
                anchor,
                side: Side::Right,
            } => {
                let dis = anchor.last_dis().expect("spine anchors end in a mini-node");
                let mut st = Hasher64::from_state(self.aux_state);
                st.write_u8(Side::Right.bit());
                st.write_u8(1);
                dis.sequential_nth(j)
                    .expect("spine growth overflow")
                    .feed(&mut st);
                let mut aux = Hasher64::from_state(self.aux_state);
                aux.write_u8(Side::Right.bit());
                aux.write_u8(0);
                self.aux_state = aux.state();
                st
            }
            Pattern::Spine {
                side: Side::Left, ..
            } => Hasher64::new(),
            Pattern::Exploded { depth, start, .. } => {
                let mut st = Hasher64::from_state(self.aux_state);
                for side in infix_path(*depth, start + j) {
                    st.write_u8(side.bit());
                    st.write_u8(0);
                }
                st
            }
            Pattern::Packed { ids } => {
                let mut st = Hasher64::new();
                ids[j].visit_elems_from(0, |s, d| feed_parts(&mut st, s, d));
                st
            }
        }
    }

    /// Depth of cell `j` assuming the run has `j + 1` cells (used while a
    /// push is in flight).
    fn cell_depth_after_push(&self, j: usize) -> usize {
        match &self.pattern {
            Pattern::Spine { anchor, side } => {
                let g = match side {
                    Side::Right => j,
                    Side::Left => 0,
                };
                anchor.depth() + g
            }
            Pattern::Exploded { base, depth, start } => base.depth() + infix_len(*depth, start + j),
            Pattern::Packed { ids } => ids[j].depth(),
        }
    }

    /// Tries to absorb a cell directly after the run's last cell. Returns
    /// `None` when absorbed, or gives the content back when the identifier
    /// does not extend any recognised pattern.
    fn try_extend_back(
        &mut self,
        id: &PosId<D>,
        content: Content<A>,
        rev: u64,
    ) -> Option<Content<A>> {
        enum Action<D> {
            Append,
            ReanchorLeft(PosId<D>),
            UpgradeRight(PosId<D>),
            UpgradeLeft(PosId<D>),
            PackedPush(PosId<D>),
        }
        let action = match &self.pattern {
            Pattern::Spine {
                side: Side::Right, ..
            } => {
                if spine_step(&self.last_id(), id) == Some(Side::Right) {
                    Action::Append
                } else {
                    return Some(content);
                }
            }
            Pattern::Spine {
                anchor,
                side: Side::Left,
            } => {
                // The next document-order cell of a prepend chain is the
                // anchor's parent-ward extension: re-anchor upward.
                if spine_step(id, anchor) == Some(Side::Left) {
                    Action::ReanchorLeft(id.clone())
                } else {
                    return Some(content);
                }
            }
            Pattern::Exploded { depth, start, .. } => {
                let next = start + self.len();
                if next < (1usize << *depth) - 1 && self.continuation_id(next) == *id {
                    Action::Append
                } else {
                    return Some(content);
                }
            }
            Pattern::Packed { ids } if ids.len() == 1 => {
                if spine_step(&ids[0], id) == Some(Side::Right) {
                    Action::UpgradeRight(ids[0].clone())
                } else if spine_step(id, &ids[0]) == Some(Side::Left) {
                    Action::UpgradeLeft(id.clone())
                } else {
                    Action::PackedPush(id.clone())
                }
            }
            Pattern::Packed { ids } => {
                let last = ids.last().expect("non-empty run");
                // Refuse the first link of a fresh chain so the caller
                // starts a singleton that can grow into a spine.
                if ids.len() >= PACKED_MAX
                    || spine_step(last, id).is_some()
                    || spine_step(id, last).is_some()
                {
                    return Some(content);
                }
                Action::PackedPush(id.clone())
            }
        };
        match action {
            Action::Append => self.push_cell(None, content, rev),
            Action::PackedPush(id) => self.push_cell(Some(id), content, rev),
            Action::ReanchorLeft(id) => {
                self.pattern =
                    match mem::replace(&mut self.pattern, Pattern::Packed { ids: Vec::new() }) {
                        Pattern::Spine { side, .. } => Pattern::Spine { anchor: id, side },
                        _ => unreachable!(),
                    };
                self.push_cell(None, content, rev);
                self.recompute();
            }
            Action::UpgradeRight(anchor) => {
                self.pattern = Pattern::Spine {
                    anchor,
                    side: Side::Right,
                };
                self.push_cell(None, content, rev);
                // The push went through the packed-era `aux_state`; rebuild
                // the digest and streaming state for the new pattern (the
                // run has two cells, so this is O(anchor depth)).
                self.recompute();
            }
            Action::UpgradeLeft(anchor) => {
                self.pattern = Pattern::Spine {
                    anchor,
                    side: Side::Left,
                };
                self.push_cell(None, content, rev);
                self.recompute();
            }
        }
        None
    }

    /// Identifier at infix index `k` below an `Exploded` pattern's base.
    fn continuation_id(&self, k: usize) -> PosId<D> {
        match &self.pattern {
            Pattern::Exploded { base, depth, .. } => {
                let mut id = base.clone();
                for side in infix_path(*depth, k) {
                    id = id.extend_plains(side, 1);
                }
                id
            }
            _ => unreachable!("continuation_id is exploded-only"),
        }
    }

    /// Mirror of [`Run::try_extend_back`] for a cell directly before the
    /// run's first cell.
    fn try_extend_front(
        &mut self,
        id: &PosId<D>,
        content: Content<A>,
        rev: u64,
    ) -> Option<Content<A>> {
        enum Action<D> {
            InsertFront,
            ReanchorRight(PosId<D>),
            UpgradeRight(PosId<D>),
            UpgradeLeft(PosId<D>),
            PackedFront(PosId<D>),
        }
        let action = match &self.pattern {
            Pattern::Spine {
                anchor,
                side: Side::Right,
            } => {
                if spine_step(id, anchor) == Some(Side::Right) {
                    Action::ReanchorRight(id.clone())
                } else {
                    return Some(content);
                }
            }
            Pattern::Spine {
                side: Side::Left, ..
            } => {
                if spine_step(&self.first_id(), id) == Some(Side::Left) {
                    Action::InsertFront
                } else {
                    return Some(content);
                }
            }
            Pattern::Exploded { start, .. } => {
                if *start > 0 && self.continuation_id(start - 1) == *id {
                    Action::InsertFront
                } else {
                    return Some(content);
                }
            }
            Pattern::Packed { ids } if ids.len() == 1 => {
                if spine_step(id, &ids[0]) == Some(Side::Right) {
                    Action::UpgradeRight(id.clone())
                } else if spine_step(&ids[0], id) == Some(Side::Left) {
                    Action::UpgradeLeft(ids[0].clone())
                } else {
                    Action::PackedFront(id.clone())
                }
            }
            Pattern::Packed { ids } => {
                let first = ids.first().expect("non-empty run");
                if ids.len() >= PACKED_MAX
                    || spine_step(id, first).is_some()
                    || spine_step(first, id).is_some()
                {
                    return Some(content);
                }
                Action::PackedFront(id.clone())
            }
        };
        match action {
            Action::InsertFront => {
                if let Pattern::Exploded { start, .. } = &mut self.pattern {
                    *start -= 1;
                }
                self.cells.insert(0, content);
                self.hot_rev = self.hot_rev.max(rev);
                self.recompute();
            }
            Action::PackedFront(id) => {
                if let Pattern::Packed { ids } = &mut self.pattern {
                    ids.insert(0, id);
                }
                self.cells.insert(0, content);
                self.hot_rev = self.hot_rev.max(rev);
                self.recompute();
            }
            Action::ReanchorRight(id) | Action::UpgradeRight(id) => {
                self.pattern = Pattern::Spine {
                    anchor: id,
                    side: Side::Right,
                };
                self.cells.insert(0, content);
                self.hot_rev = self.hot_rev.max(rev);
                self.recompute();
            }
            Action::UpgradeLeft(anchor) => {
                self.pattern = Pattern::Spine {
                    anchor,
                    side: Side::Left,
                };
                self.cells.insert(0, content);
                self.hot_rev = self.hot_rev.max(rev);
                self.recompute();
            }
        }
        None
    }

    /// Splits the run at cell `j`: `self` keeps cells `[0, j)`, the returned
    /// run holds `[j, len)`. Requires `0 < j < len`.
    fn split_off(&mut self, j: usize) -> Run<A, D> {
        debug_assert!(j > 0 && j < self.len());
        let tail_cells = self.cells.split_off(j);
        let tail_pattern = match &mut self.pattern {
            Pattern::Packed { ids } => Pattern::Packed {
                ids: ids.split_off(j),
            },
            Pattern::Exploded { base, depth, start } => Pattern::Exploded {
                base: base.clone(),
                depth: *depth,
                start: *start + j,
            },
            Pattern::Spine { anchor, side } => match side {
                Side::Right => Pattern::Spine {
                    anchor: spine_cell_id(anchor, Side::Right, j),
                    side: Side::Right,
                },
                Side::Left => {
                    // Document order is reversed: the tail keeps the original
                    // (shallow) anchor, the head re-anchors at its own
                    // shallowest cell.
                    let tail = Pattern::Spine {
                        anchor: anchor.clone(),
                        side: Side::Left,
                    };
                    *anchor = spine_cell_id(anchor, Side::Left, tail_cells.len());
                    tail
                }
            },
        };
        let mut tail = Run {
            pattern: tail_pattern,
            cells: tail_cells,
            live_bits: Vec::new(),
            agg: Agg::default(),
            hot_rev: self.hot_rev,
            aux_state: 0,
        };
        tail.recompute();
        self.recompute();
        tail
    }

    /// Removes the first cell. Requires `len >= 2`.
    fn remove_first(&mut self) -> Content<A> {
        debug_assert!(self.len() >= 2);
        match &mut self.pattern {
            Pattern::Packed { ids } => {
                ids.remove(0);
            }
            Pattern::Exploded { start, .. } => *start += 1,
            Pattern::Spine { anchor, side } => {
                if *side == Side::Right {
                    *anchor = spine_cell_id(anchor, Side::Right, 1);
                }
                // A left spine's first cell is its deepest: the anchor stays.
            }
        }
        let old = self.cells.remove(0);
        self.recompute();
        old
    }

    /// Removes the last cell. Requires `len >= 2`.
    fn remove_last(&mut self) -> Content<A> {
        debug_assert!(self.len() >= 2);
        if let Pattern::Packed { ids } = &mut self.pattern {
            ids.pop();
        }
        let old = self.cells.pop().expect("non-empty run");
        if let Pattern::Spine { anchor, side } = &mut self.pattern {
            if *side == Side::Left {
                // The removed cell was the shallow anchor; re-anchor one
                // growth step deeper.
                *anchor = spine_cell_id(anchor, Side::Left, 1);
            }
        }
        self.recompute();
        old
    }

    /// Whether any cell identifier carries a disambiguator (used by flatten
    /// to decide whether a region is already in canonical compact form).
    fn has_dis(&self) -> bool {
        match &self.pattern {
            Pattern::Spine { .. } => true,
            Pattern::Exploded { base, .. } => base.dis_count() > 0,
            Pattern::Packed { ids } => ids.iter().any(|id| id.dis_count() > 0),
        }
    }

    /// Approximate heap footprint of the run's pattern storage. Chunked
    /// identifiers cost one node per segment, not one element per level.
    fn pattern_heap_bytes(&self) -> usize {
        match &self.pattern {
            Pattern::Spine { anchor, .. } => anchor.heap_bytes(),
            Pattern::Exploded { base, .. } => base.heap_bytes(),
            Pattern::Packed { ids } => ids
                .iter()
                .map(|id| mem::size_of::<PosId<D>>() + id.heap_bytes())
                .sum(),
        }
    }
}

/// A node of the small-arity balanced tree of runs.
#[derive(Debug, Clone)]
enum Node<A, D> {
    Leaf {
        runs: Vec<Run<A, D>>,
        agg: Agg,
    },
    Internal {
        // Boxed on purpose: a node is several hundred bytes, and ARITY
        // splits shift siblings around — pointer moves, not node memcpys.
        #[allow(clippy::vec_box)]
        children: Vec<Box<Node<A, D>>>,
        agg: Agg,
    },
}

/// What an insert places at an identifier.
enum Place<A> {
    Atom(A),
    Tombstone,
    Ghost,
}

impl<A: Atom, D: Disambiguator> Node<A, D> {
    fn empty_leaf() -> Self {
        Node::Leaf {
            runs: Vec::new(),
            agg: Agg::default(),
        }
    }

    fn agg(&self) -> &Agg {
        match self {
            Node::Leaf { agg, .. } | Node::Internal { agg, .. } => agg,
        }
    }

    fn recompute_agg(&mut self) {
        match self {
            Node::Leaf { runs, agg } => {
                let mut a = Agg::default();
                for r in runs {
                    a.merge(&r.agg);
                }
                *agg = a;
            }
            Node::Internal { children, agg } => {
                let mut a = Agg::default();
                for c in children.iter() {
                    a.merge(c.agg());
                }
                *agg = a;
            }
        }
    }

    /// Smallest identifier in the subtree; `None` only for an empty leaf.
    fn first_id(&self) -> Option<PosId<D>> {
        match self {
            Node::Leaf { runs, .. } => runs.first().map(|r| r.first_id()),
            Node::Internal { children, .. } => children.first().and_then(|c| c.first_id()),
        }
    }

    /// Largest identifier in the subtree; `None` only for an empty leaf.
    fn last_id(&self) -> Option<PosId<D>> {
        match self {
            Node::Leaf { runs, .. } => runs.last().map(|r| r.last_id()),
            Node::Internal { children, .. } => children.last().and_then(|c| c.last_id()),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Node::Leaf { runs, .. } => runs.is_empty(),
            Node::Internal { children, .. } => children.is_empty(),
        }
    }
}

/// Index of the child whose key range covers `id`.
fn child_index_for<A: Atom, D: Disambiguator>(
    children: &[Box<Node<A, D>>],
    id: &PosId<D>,
) -> usize {
    let mut i = 0;
    while i + 1 < children.len() {
        let next_first = children[i + 1]
            .first_id()
            .expect("internal children are non-empty");
        if next_first <= *id {
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// The run-coalesced document store: drop-in replacement for the per-atom
/// [`Tree`] inside [`Treedoc`](crate::Treedoc), storing occupied slots as
/// coalesced [`Run`]s in a balanced tree ordered by identifier.
#[derive(Debug, Clone)]
pub struct RunTree<A, D: Disambiguator> {
    root: Node<A, D>,
}

impl<A: Atom, D: Disambiguator> Default for RunTree<A, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Atom, D: Disambiguator> RunTree<A, D> {
    /// An empty store.
    pub fn new() -> Self {
        RunTree {
            root: Node::empty_leaf(),
        }
    }

    /// Inserts a live atom at `id`, creating ghost cells for any mini-node
    /// ancestors the identifier names (mirroring the per-atom tree, which
    /// materialises those mini-nodes structurally).
    pub fn insert(&mut self, id: &PosId<D>, atom: A, rev: u64) -> Result<()> {
        // Sequential-typing identifiers carry no interior disambiguators;
        // the O(1) gate keeps the append hot path free of prefix scans.
        if id.interior_dis_count() > 0 {
            for prefix in id.mini_prefixes() {
                self.place(&prefix, Place::Ghost, rev)?;
            }
        }
        self.place(id, Place::Atom(atom), rev)
    }

    fn place(&mut self, id: &PosId<D>, place: Place<A>, rev: u64) -> Result<()> {
        if let Some(splinter) = place_rec(&mut self.root, id, place, rev)? {
            self.split_root(splinter);
        }
        Ok(())
    }

    fn split_root(&mut self, splinter: Node<A, D>) {
        let old = mem::replace(&mut self.root, Node::empty_leaf());
        let mut agg = *old.agg();
        agg.merge(splinter.agg());
        self.root = Node::Internal {
            children: vec![Box::new(old), Box::new(splinter)],
            agg,
        };
    }

    /// Deletes the atom at `id`, following the disambiguator's policy:
    /// tombstone for SDIS, discard (with ghost-ancestor pruning) for UDIS.
    /// Returns the removed atom, or `Ok(None)` when the slot is not live.
    pub fn delete(&mut self, id: &PosId<D>, rev: u64) -> Result<Option<A>> {
        match self.get(id) {
            Some(c) if c.is_live() => {}
            _ => return Ok(None),
        }
        if !D::DISCARD_ON_DELETE {
            let old = self.set_content(id, Content::Tombstone, rev);
            return Ok(old.and_then(into_live));
        }
        let is_mini = id.last().is_some_and(|e| e.dis.is_some());
        if is_mini && self.has_descendant_cells(id) {
            let old = self.set_content(id, Content::Ghost, rev);
            return Ok(old.and_then(into_live));
        }
        let old = self.remove_cell(id);
        self.cascade_ghost_ancestors(id);
        Ok(old.and_then(into_live))
    }

    /// Removes ghost ancestors of a just-removed cell that no longer shelter
    /// any descendants, deepest first — the run-level mirror of the per-atom
    /// tree's unwind-time pruning.
    fn cascade_ghost_ancestors(&mut self, id: &PosId<D>) {
        if id.interior_dis_count() == 0 {
            return;
        }
        for prefix in id.mini_prefixes().into_iter().rev() {
            match self.get(&prefix) {
                None => continue,
                Some(Content::Ghost) => {
                    if self.has_descendant_cells(&prefix) {
                        return;
                    }
                    self.remove_cell(&prefix);
                }
                Some(_) => return,
            }
        }
    }

    /// Whether any stored cell's identifier strictly extends `id`. Because a
    /// subtree is a contiguous infix interval containing its root, checking
    /// the immediate predecessor and successor suffices.
    fn has_descendant_cells(&self, id: &PosId<D>) -> bool {
        let is_desc = |other: &PosId<D>| id.is_strict_prefix_of(other);
        if let Some(succ) = self.successor_slot(id) {
            if is_desc(&succ) {
                return true;
            }
        }
        if let Some(pred) = self.predecessor_slot(id) {
            if is_desc(&pred) {
                return true;
            }
        }
        false
    }

    /// Overwrites the content at `id`, returning the old content, or `None`
    /// when no cell exists there.
    fn set_content(&mut self, id: &PosId<D>, content: Content<A>, rev: u64) -> Option<Content<A>> {
        let mut content = Some(content);
        set_rec(&mut self.root, id, &mut content, rev)
    }

    /// Removes the cell at `id` entirely, returning its content.
    fn remove_cell(&mut self, id: &PosId<D>) -> Option<Content<A>> {
        let (old, splinter) = remove_rec(&mut self.root, id);
        if let Some(splinter) = splinter {
            self.split_root(splinter);
        }
        self.collapse_root();
        old
    }

    fn collapse_root(&mut self) {
        loop {
            match &mut self.root {
                Node::Internal { children, .. } if children.len() == 1 => {
                    let only = children.pop().expect("len checked");
                    self.root = *only;
                }
                Node::Internal { children, .. } if children.is_empty() => {
                    self.root = Node::empty_leaf();
                }
                _ => return,
            }
        }
    }
}

fn into_live<A>(content: Content<A>) -> Option<A> {
    match content {
        Content::Live(a) => Some(a),
        _ => None,
    }
}

fn place_rec<A: Atom, D: Disambiguator>(
    node: &mut Node<A, D>,
    id: &PosId<D>,
    place: Place<A>,
    rev: u64,
) -> Result<Option<Node<A, D>>> {
    match node {
        Node::Internal { children, agg } => {
            let i = child_index_for(children, id);
            let splinter = place_rec(&mut children[i], id, place, rev)?;
            if let Some(spl) = splinter {
                children.insert(i + 1, Box::new(spl));
            }
            let out = if children.len() > ARITY {
                let right = children.split_off(children.len() / 2);
                let mut right_node = Node::Internal {
                    children: right,
                    agg: Agg::default(),
                };
                right_node.recompute_agg();
                Some(right_node)
            } else {
                None
            };
            let _ = agg;
            node.recompute_agg();
            Ok(out)
        }
        Node::Leaf { runs, agg } => {
            place_in_leaf(runs, id, place, rev)?;
            let out = if runs.len() > ARITY {
                let right = runs.split_off(runs.len() / 2);
                let mut right_node = Node::Leaf {
                    runs: right,
                    agg: Agg::default(),
                };
                right_node.recompute_agg();
                Some(right_node)
            } else {
                None
            };
            let _ = agg;
            node.recompute_agg();
            Ok(out)
        }
    }
}

fn place_in_leaf<A: Atom, D: Disambiguator>(
    runs: &mut Vec<Run<A, D>>,
    id: &PosId<D>,
    place: Place<A>,
    rev: u64,
) -> Result<()> {
    // Locate the run containing `id`, or the gap index where it belongs.
    let mut gap = runs.len();
    for i in 0..runs.len() {
        if *id < runs[i].first_id() {
            gap = i;
            break;
        }
        if *id <= runs[i].last_id() {
            // `id` falls inside run `i`'s identifier span.
            match runs[i].find(id) {
                Ok(j) => match place {
                    Place::Atom(atom) => {
                        if runs[i].cells[j].is_live() {
                            return Err(Error::DuplicatePosId { id: id.repr() });
                        }
                        runs[i].set_cell(j, Content::Live(atom), rev);
                        return Ok(());
                    }
                    Place::Ghost => {
                        // The structural ancestor already exists; just keep
                        // the run's recency stamp fresh, as the per-atom
                        // tree stamps every node on the insert path.
                        runs[i].hot_rev = runs[i].hot_rev.max(rev);
                        return Ok(());
                    }
                    Place::Tombstone => {
                        // State sync may land a tombstone on an occupied
                        // slot; tombstones dominate whatever is stored.
                        if !matches!(runs[i].cells[j], Content::Tombstone) {
                            runs[i].set_cell(j, Content::Tombstone, rev);
                        }
                        return Ok(());
                    }
                },
                Err(j) => {
                    debug_assert!(j > 0 && j < runs[i].len());
                    let content = place_content(place);
                    let right = runs[i].split_off(j);
                    runs.insert(i + 1, Run::singleton(id.clone(), content, rev));
                    runs.insert(i + 2, right);
                    return Ok(());
                }
            }
        }
    }
    // Gap insertion: try coalescing with the neighbouring runs first.
    let mut content = Some(place_content(place));
    if gap > 0 {
        content = match runs[gap - 1].try_extend_back(id, content.take().expect("set"), rev) {
            None => return Ok(()),
            refused => refused,
        };
    }
    if gap < runs.len() {
        content = match runs[gap].try_extend_front(id, content.take().expect("set"), rev) {
            None => return Ok(()),
            refused => refused,
        };
    }
    runs.insert(
        gap,
        Run::singleton(id.clone(), content.take().expect("set"), rev),
    );
    Ok(())
}

fn place_content<A>(place: Place<A>) -> Content<A> {
    match place {
        Place::Atom(a) => Content::Live(a),
        Place::Tombstone => Content::Tombstone,
        Place::Ghost => Content::Ghost,
    }
}

/// Integration precedence of state-sync'd content: tombstones dominate live
/// atoms, which dominate ghosts (see [`RunTree::integrate_cell`]).
fn content_rank<A>(content: &Content<A>) -> u8 {
    match content {
        Content::Absent => 0,
        Content::Ghost => 1,
        Content::Live(_) => 2,
        Content::Tombstone => 3,
    }
}

fn set_rec<A: Atom, D: Disambiguator>(
    node: &mut Node<A, D>,
    id: &PosId<D>,
    content: &mut Option<Content<A>>,
    rev: u64,
) -> Option<Content<A>> {
    match node {
        Node::Internal { children, .. } => {
            let i = child_index_for(children, id);
            let old = set_rec(&mut children[i], id, content, rev)?;
            node.recompute_agg();
            Some(old)
        }
        Node::Leaf { runs, .. } => {
            for run in runs.iter_mut() {
                if *id < run.first_id() {
                    return None;
                }
                if *id <= run.last_id() {
                    let j = run.find(id).ok()?;
                    let old = run.set_cell(j, content.take().expect("unconsumed"), rev);
                    node.recompute_agg();
                    return Some(old);
                }
            }
            None
        }
    }
}

fn remove_rec<A: Atom, D: Disambiguator>(
    node: &mut Node<A, D>,
    id: &PosId<D>,
) -> (Option<Content<A>>, Option<Node<A, D>>) {
    match node {
        Node::Internal { children, .. } => {
            let i = child_index_for(children, id);
            let (old, splinter) = remove_rec(&mut children[i], id);
            if old.is_none() {
                debug_assert!(splinter.is_none());
                return (None, None);
            }
            if let Some(spl) = splinter {
                children.insert(i + 1, Box::new(spl));
            }
            if children[i].is_empty() {
                children.remove(i);
            }
            let out = if children.len() > ARITY {
                let right = children.split_off(children.len() / 2);
                let mut right_node = Node::Internal {
                    children: right,
                    agg: Agg::default(),
                };
                right_node.recompute_agg();
                Some(right_node)
            } else {
                None
            };
            node.recompute_agg();
            (old, out)
        }
        Node::Leaf { runs, .. } => {
            let mut hit: Option<(usize, usize)> = None;
            for (i, run) in runs.iter().enumerate() {
                if *id < run.first_id() {
                    break;
                }
                if *id <= run.last_id() {
                    if let Ok(j) = run.find(id) {
                        hit = Some((i, j));
                    }
                    break;
                }
            }
            let Some((i, j)) = hit else {
                return (None, None);
            };
            let old = if runs[i].len() == 1 {
                let mut run = runs.remove(i);
                if let Pattern::Packed { ids } = &mut run.pattern {
                    ids.pop();
                }
                run.cells.pop()
            } else if j == 0 {
                Some(runs[i].remove_first())
            } else if j == runs[i].len() - 1 {
                Some(runs[i].remove_last())
            } else {
                let mut right = runs[i].split_off(j);
                let old = right.remove_first();
                runs.insert(i + 1, right);
                Some(old)
            };
            let out = if runs.len() > ARITY {
                let right = runs.split_off(runs.len() / 2);
                let mut right_node = Node::Leaf {
                    runs: right,
                    agg: Agg::default(),
                };
                right_node.recompute_agg();
                Some(right_node)
            } else {
                None
            };
            node.recompute_agg();
            (old, out)
        }
    }
}

impl<A: Atom, D: Disambiguator> RunTree<A, D> {
    /// Content at `id`, or `None` when no cell is stored there.
    pub fn get(&self, id: &PosId<D>) -> Option<&Content<A>> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal { children, .. } => {
                    if children.is_empty() {
                        return None;
                    }
                    node = &children[child_index_for(children, id)];
                }
                Node::Leaf { runs, .. } => {
                    for run in runs {
                        if *id < run.first_id() {
                            return None;
                        }
                        if *id <= run.last_id() {
                            return run.find(id).ok().map(|j| &run.cells[j]);
                        }
                    }
                    return None;
                }
            }
        }
    }

    /// Identifier of the first stored cell in document order.
    pub fn first_slot(&self) -> Option<PosId<D>> {
        self.root.first_id()
    }

    /// Identifier of the closest stored cell strictly after `id`.
    pub fn successor_slot(&self, id: &PosId<D>) -> Option<PosId<D>> {
        succ_rec(&self.root, id)
    }

    /// Identifier of the closest stored cell strictly before `id`.
    pub fn predecessor_slot(&self, id: &PosId<D>) -> Option<PosId<D>> {
        pred_rec(&self.root, id)
    }

    /// The `index`-th live atom in document order.
    pub fn atom_at(&self, index: usize) -> Option<&A> {
        if index >= self.root.agg().live {
            return None;
        }
        let (run, j) = live_cell_rec(&self.root, index)?;
        run.cells[j].live()
    }

    /// Identifier of the `index`-th live atom in document order.
    pub fn id_of_live_index(&self, index: usize) -> Option<PosId<D>> {
        if index >= self.root.agg().live {
            return None;
        }
        let (run, j) = live_cell_rec(&self.root, index)?;
        Some(run.cell_id(j))
    }

    /// Number of live atoms.
    pub fn live_len(&self) -> usize {
        self.root.agg().live
    }

    /// Number of stored cells (live + tombstones + ghosts).
    pub fn node_count(&self) -> usize {
        self.root.agg().total
    }

    /// `true` when no cell is stored.
    pub fn is_empty(&self) -> bool {
        self.root.agg().total == 0
    }

    /// Height of the equivalent per-atom tree in levels of major nodes.
    pub fn height(&self) -> usize {
        let a = self.root.agg();
        if a.total == 0 {
            0
        } else {
            a.depth_max + 1
        }
    }

    /// Document statistics, assembled in `O(1)` from the root aggregate.
    pub fn stats(&self) -> DocStats {
        let a = self.root.agg();
        DocStats {
            live_atoms: a.live,
            total_nodes: a.total,
            tombstones: a.tombstones,
            ghosts: a.ghosts,
            pos_ids: PosIdStats {
                max_bits: a.bits_max,
                total_bits: a.bits_total,
                live_bits: a.bits_live,
                nodes: a.total,
                live: a.live,
            },
            document_bytes: a.atom_bytes,
            height: self.height(),
        }
    }

    /// Smallest `hot_rev` over all runs (0 when the store is empty): if this
    /// exceeds a cold threshold, no region can possibly be cold.
    pub fn min_hot_rev(&self) -> u64 {
        let mut min = u64::MAX;
        self.for_each_run(&mut |run| min = min.min(run.hot_rev));
        if min == u64::MAX {
            0
        } else {
            min
        }
    }

    /// Number of coalesced runs (the figure of merit for coalescing tests
    /// and the memory benchmarks).
    pub fn run_count(&self) -> usize {
        let mut n = 0;
        self.for_each_run(&mut |_| n += 1);
        n
    }

    /// Approximate heap footprint of the identifier index.
    pub fn index_bytes(&self) -> usize {
        fn walk<A: Atom, D: Disambiguator>(node: &Node<A, D>) -> usize {
            mem::size_of::<Node<A, D>>()
                + match node {
                    Node::Leaf { runs, .. } => runs
                        .iter()
                        .map(|r| {
                            mem::size_of::<Run<A, D>>()
                                + r.pattern_heap_bytes()
                                + r.cells.len() * mem::size_of::<Content<A>>()
                                + r.live_bits.len() * 8
                        })
                        .sum::<usize>(),
                    Node::Internal { children, .. } => {
                        children.iter().map(|c| walk(c)).sum::<usize>()
                    }
                }
        }
        walk(&self.root)
    }

    fn for_each_run(&self, f: &mut impl FnMut(&Run<A, D>)) {
        fn walk<A: Atom, D: Disambiguator>(node: &Node<A, D>, f: &mut impl FnMut(&Run<A, D>)) {
            match node {
                Node::Leaf { runs, .. } => {
                    for r in runs {
                        f(r);
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        walk(c, f);
                    }
                }
            }
        }
        walk(&self.root, f);
    }

    /// All live atoms in document order.
    pub fn to_vec(&self) -> Vec<A> {
        let mut out = Vec::with_capacity(self.live_len());
        self.for_each_run(&mut |run| {
            out.extend(run.cells.iter().filter_map(|c| c.live().cloned()));
        });
        out
    }

    /// All live atoms with their identifiers, in document order.
    pub fn to_identified_vec(&self) -> Vec<(PosId<D>, A)> {
        let mut out = Vec::with_capacity(self.live_len());
        self.for_each_run(&mut |run| {
            for (j, c) in run.cells.iter().enumerate() {
                if let Some(a) = c.live() {
                    out.push((run.cell_id(j), a.clone()));
                }
            }
        });
        out
    }

    /// Every stored cell in document order, in the exchange format shared
    /// with [`Tree::collect_cells`].
    pub fn collect_cells(&self) -> Vec<(PosId<D>, Content<A>, u64)> {
        let mut out = Vec::with_capacity(self.node_count());
        self.for_each_run(&mut |run| {
            for (j, c) in run.cells.iter().enumerate() {
                out.push((run.cell_id(j), c.clone(), run.hot_rev));
            }
        });
        out
    }

    /// Builds a store for `atoms` laid out as a freshly exploded (balanced,
    /// metadata-free) document: a single run.
    pub fn from_exploded(atoms: Vec<A>) -> Self {
        if atoms.is_empty() {
            return Self::new();
        }
        let n = atoms.len();
        let mut run = Run {
            pattern: Pattern::Exploded {
                base: PosId::root(),
                depth: explode_depth(n),
                start: 0,
            },
            cells: atoms.into_iter().map(Content::Live).collect(),
            live_bits: Vec::new(),
            agg: Agg::default(),
            hot_rev: 0,
            aux_state: 0,
        };
        run.recompute();
        Self::from_runs(vec![run])
    }

    /// Rebuilds a store from a per-atom tree, re-coalescing every
    /// recognisable run.
    pub fn from_tree(tree: &Tree<A, D>) -> Self {
        Self::from_cells(tree.collect_cells())
    }

    /// Rebuilds a store from cells in document order (the
    /// [`Tree::collect_cells`] exchange format).
    pub fn from_cells(cells: Vec<(PosId<D>, Content<A>, u64)>) -> Self {
        let mut runs: Vec<Run<A, D>> = Vec::new();
        for (id, content, rev) in cells {
            let mut content = Some(content);
            if let Some(last) = runs.last_mut() {
                content = last.try_extend_back(&id, content.take().expect("set"), rev);
                if content.is_none() {
                    continue;
                }
            }
            runs.push(Run::singleton(id, content.take().expect("set"), rev));
        }
        Self::from_runs(runs)
    }

    /// Materialises the equivalent per-atom [`Tree`], stamping each restored
    /// path with its run's recency so the cold-subtree heuristic still sees
    /// run-level `hot_rev`s.
    pub fn to_tree(&self) -> Tree<A, D> {
        let mut tree = Tree::new();
        self.for_each_run(&mut |run| {
            for (j, c) in run.cells.iter().enumerate() {
                let id = run.cell_id(j);
                tree.restore_slot(&id, c.clone());
                tree.stamp_path(&id, run.hot_rev);
            }
        });
        tree.rebuild_counts();
        tree
    }

    fn from_runs(runs: Vec<Run<A, D>>) -> Self {
        if runs.is_empty() {
            return Self::new();
        }
        let mut level: Vec<Box<Node<A, D>>> = Vec::new();
        let mut buf: Vec<Run<A, D>> = Vec::new();
        for run in runs {
            buf.push(run);
            if buf.len() == ARITY {
                let mut leaf = Node::Leaf {
                    runs: mem::take(&mut buf),
                    agg: Agg::default(),
                };
                leaf.recompute_agg();
                level.push(Box::new(leaf));
            }
        }
        if !buf.is_empty() {
            let mut leaf = Node::Leaf {
                runs: buf,
                agg: Agg::default(),
            };
            leaf.recompute_agg();
            level.push(Box::new(leaf));
        }
        while level.len() > 1 {
            let mut next: Vec<Box<Node<A, D>>> = Vec::new();
            let mut buf: Vec<Box<Node<A, D>>> = Vec::new();
            for child in level {
                buf.push(child);
                if buf.len() == ARITY {
                    let mut inner = Node::Internal {
                        children: mem::take(&mut buf),
                        agg: Agg::default(),
                    };
                    inner.recompute_agg();
                    next.push(Box::new(inner));
                }
            }
            if !buf.is_empty() {
                let mut inner = Node::Internal {
                    children: buf,
                    agg: Agg::default(),
                };
                inner.recompute_agg();
                next.push(Box::new(inner));
            }
            level = next;
        }
        RunTree {
            root: *level.pop().expect("non-empty level"),
        }
    }

    fn into_runs(self) -> Vec<Run<A, D>> {
        fn collect<A, D>(node: Node<A, D>, out: &mut Vec<Run<A, D>>) {
            match node {
                Node::Leaf { runs, .. } => out.extend(runs),
                Node::Internal { children, .. } => {
                    for c in children {
                        collect(*c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        collect(self.root, &mut out);
        out
    }
}

/// Whether `id` falls in the half-open identifier range `[lo, hi)` (`None`
/// bounds are unbounded).
fn id_in_range<D: Disambiguator>(
    id: &PosId<D>,
    lo: Option<&PosId<D>>,
    hi: Option<&PosId<D>>,
) -> bool {
    lo.is_none_or(|l| *id >= *l) && hi.is_none_or(|h| *id < *h)
}

fn range_digest_rec<A: Atom, D: Disambiguator>(
    node: &Node<A, D>,
    lo: Option<&PosId<D>>,
    hi: Option<&PosId<D>>,
) -> (u64, usize) {
    let (Some(first), Some(last)) = (node.first_id(), node.last_id()) else {
        return (0, 0);
    };
    if hi.is_some_and(|h| first >= *h) || lo.is_some_and(|l| last < *l) {
        return (0, 0);
    }
    if id_in_range(&first, lo, hi) && id_in_range(&last, lo, hi) {
        // The node's whole identifier interval sits inside the range: its
        // cached aggregate already holds the answer.
        let a = node.agg();
        return (a.digest, a.total);
    }
    match node {
        Node::Internal { children, .. } => {
            let mut digest = 0u64;
            let mut cells = 0usize;
            for child in children {
                let (d, n) = range_digest_rec(child, lo, hi);
                digest = digest_merge(digest, d, n as u64);
                cells += n;
            }
            (digest, cells)
        }
        Node::Leaf { runs, .. } => {
            let mut digest = 0u64;
            let mut cells = 0usize;
            for run in runs {
                let (jlo, jhi) = run.range_bounds(lo, hi);
                if jlo >= jhi {
                    continue;
                }
                let d = if jlo == 0 && jhi == run.len() {
                    run.agg.digest
                } else {
                    run.fold_digest(jlo, jhi)
                };
                digest = digest_merge(digest, d, (jhi - jlo) as u64);
                cells += jhi - jlo;
            }
            (digest, cells)
        }
    }
}

fn cells_in_range_rec<A: Atom, D: Disambiguator>(
    node: &Node<A, D>,
    lo: Option<&PosId<D>>,
    hi: Option<&PosId<D>>,
    out: &mut Vec<(PosId<D>, Content<A>)>,
) {
    let (Some(first), Some(last)) = (node.first_id(), node.last_id()) else {
        return;
    };
    if hi.is_some_and(|h| first >= *h) || lo.is_some_and(|l| last < *l) {
        return;
    }
    match node {
        Node::Internal { children, .. } => {
            for child in children {
                cells_in_range_rec(child, lo, hi, out);
            }
        }
        Node::Leaf { runs, .. } => {
            for run in runs {
                let (jlo, jhi) = run.range_bounds(lo, hi);
                for j in jlo..jhi {
                    out.push((run.cell_id(j), run.cells[j].clone()));
                }
            }
        }
    }
}

impl<A: Atom, D: Disambiguator> RunTree<A, D> {
    /// Incremental merkle digest over every stored cell (live, tombstone
    /// and ghost) in document order — `O(1)` from the cached root
    /// aggregate. Two replicas that have applied the same operation set
    /// report the same digest, however differently their stores fragmented
    /// into runs; see [`crate::hash`].
    pub fn digest(&self) -> u64 {
        self.root.agg().digest
    }

    /// Identifier of the `k`-th stored cell (counting every content kind)
    /// in document order — how the sync digest walk picks its range
    /// partition points. `O(log n)` by cached totals.
    pub fn id_at_rank(&self, k: usize) -> Option<PosId<D>> {
        fn rec<A: Atom, D: Disambiguator>(node: &Node<A, D>, mut k: usize) -> Option<PosId<D>> {
            match node {
                Node::Leaf { runs, .. } => {
                    for run in runs {
                        if k < run.len() {
                            return Some(run.cell_id(k));
                        }
                        k -= run.len();
                    }
                    None
                }
                Node::Internal { children, .. } => {
                    for child in children {
                        let total = child.agg().total;
                        if k < total {
                            return rec(child, k);
                        }
                        k -= total;
                    }
                    None
                }
            }
        }
        if k >= self.root.agg().total {
            return None;
        }
        rec(&self.root, k)
    }

    /// Merkle digest and cell count of the stored cells with
    /// `lo <= id < hi` (`None` bounds are unbounded). Subtrees fully inside
    /// the range are answered from cached aggregates, so the cost is
    /// `O(log n)` plus the two boundary runs.
    pub fn range_digest(&self, lo: Option<&PosId<D>>, hi: Option<&PosId<D>>) -> (u64, usize) {
        range_digest_rec(&self.root, lo, hi)
    }

    /// Every stored cell with `lo <= id < hi`, in document order.
    pub fn cells_in_range(
        &self,
        lo: Option<&PosId<D>>,
        hi: Option<&PosId<D>>,
    ) -> Vec<(PosId<D>, Content<A>)> {
        let mut out = Vec::new();
        cells_in_range_rec(&self.root, lo, hi, &mut out);
        out
    }

    /// Integrates one cell received through state-based sync, under the
    /// precedence `Tombstone > Live > Ghost`: a tombstone beats anything, a
    /// live atom fills ghost and absent slots, a ghost only materialises
    /// where nothing is stored. Ghost ancestors named by the identifier are
    /// created exactly as [`RunTree::insert`] does. Returns whether the
    /// store changed; already-dominant cells make the call a no-op, so
    /// integration is idempotent and duplicate-tolerant.
    ///
    /// Sound for tombstone-keeping (SDIS) documents, where the delivered
    /// cell set only grows; UDIS discards cells on delete, which makes
    /// "deleted" indistinguishable from "never seen" for state sync — use
    /// operation replay there.
    pub fn integrate_cell(&mut self, id: &PosId<D>, content: Content<A>, rev: u64) -> Result<bool> {
        if matches!(content, Content::Absent) {
            return Ok(false);
        }
        if let Some(existing) = self.get(id) {
            if content_rank(existing) >= content_rank(&content) {
                return Ok(false);
            }
            self.set_content(id, content, rev);
            return Ok(true);
        }
        if id.interior_dis_count() > 0 {
            for prefix in id.mini_prefixes() {
                self.place(&prefix, Place::Ghost, rev)?;
            }
        }
        let place = match content {
            Content::Live(a) => Place::Atom(a),
            Content::Tombstone => Place::Tombstone,
            Content::Ghost => Place::Ghost,
            Content::Absent => unreachable!("checked above"),
        };
        self.place(id, place, rev)?;
        Ok(true)
    }
}

fn succ_rec<A: Atom, D: Disambiguator>(node: &Node<A, D>, id: &PosId<D>) -> Option<PosId<D>> {
    match node {
        Node::Leaf { runs, .. } => {
            for run in runs {
                if run.last_id() > *id {
                    let j = match run.find(id) {
                        Ok(j) => j + 1,
                        Err(j) => j,
                    };
                    debug_assert!(j < run.len());
                    return Some(run.cell_id(j));
                }
            }
            None
        }
        Node::Internal { children, .. } => {
            if children.is_empty() {
                return None;
            }
            let i = child_index_for(children, id);
            if let Some(s) = succ_rec(&children[i], id) {
                return Some(s);
            }
            children.get(i + 1).and_then(|c| c.first_id())
        }
    }
}

fn pred_rec<A: Atom, D: Disambiguator>(node: &Node<A, D>, id: &PosId<D>) -> Option<PosId<D>> {
    match node {
        Node::Leaf { runs, .. } => {
            for run in runs.iter().rev() {
                if run.first_id() < *id {
                    let j = match run.find(id) {
                        Ok(j) => j,
                        Err(j) => j,
                    };
                    debug_assert!(j > 0);
                    return Some(run.cell_id(j - 1));
                }
            }
            None
        }
        Node::Internal { children, .. } => {
            if children.is_empty() {
                return None;
            }
            let i = child_index_for(children, id);
            if let Some(p) = pred_rec(&children[i], id) {
                return Some(p);
            }
            if i > 0 {
                children[i - 1].last_id()
            } else {
                None
            }
        }
    }
}

fn live_cell_rec<A: Atom, D: Disambiguator>(
    node: &Node<A, D>,
    mut k: usize,
) -> Option<(&Run<A, D>, usize)> {
    match node {
        Node::Leaf { runs, .. } => {
            for run in runs {
                if k < run.agg.live {
                    return Some((run, run.select_live(k)));
                }
                k -= run.agg.live;
            }
            None
        }
        Node::Internal { children, .. } => {
            for child in children {
                let live = child.agg().live;
                if k < live {
                    return live_cell_rec(child, k);
                }
                k -= live;
            }
            None
        }
    }
}

use crate::flatten::FlattenOutcome;

/// Orders a cell identifier against the region rooted at the plain path
/// `bits`: `Less`/`Greater` when the cell falls outside the region before /
/// after it in document order, `Equal` when it is inside.
fn cmp_vs_region<D: Disambiguator>(id: &PosId<D>, bits: &[Side]) -> Ordering {
    for (i, &b) in bits.iter().enumerate() {
        let Some((side, dis)) = id.elem_at(i) else {
            // The identifier names an ancestor slot of the region root; the
            // region lives in its `b`-side subtree.
            return match b {
                Side::Left => Ordering::Greater,
                Side::Right => Ordering::Less,
            };
        };
        if side != b {
            return match side {
                Side::Left => Ordering::Less,
                Side::Right => Ordering::Greater,
            };
        }
        if dis.is_some() {
            // The identifier enters a mini-node on the region's path. The
            // region root's own minis are part of the region; higher minis
            // sort against the plain child the region continues into.
            if i + 1 == bits.len() {
                return Ordering::Equal;
            }
            return match bits[i + 1] {
                Side::Left => Ordering::Greater,
                Side::Right => Ordering::Less,
            };
        }
    }
    Ordering::Equal
}

impl<A: Atom, D: Disambiguator> RunTree<A, D> {
    /// First cell index of `run` for which `pred` is false (cells are
    /// monotone under `pred`).
    fn partition_point(run: &Run<A, D>, pred: impl Fn(&PosId<D>) -> bool) -> usize {
        let mut lo = 0;
        let mut hi = run.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(&run.cell_id(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Algorithm 2 (`flatten`) applied natively to run storage: replaces the
    /// region rooted at the plain path `bits` with a single exploded run of
    /// its live atoms, dropping tombstones, ghosts and disambiguators.
    pub fn flatten_region(&mut self, bits: &[Side]) -> Result<FlattenOutcome> {
        let old = mem::take(self);
        let runs = old.into_runs();
        let mut before: Vec<Run<A, D>> = Vec::new();
        let mut inside: Vec<Run<A, D>> = Vec::new();
        let mut after: Vec<Run<A, D>> = Vec::new();
        for mut run in runs {
            let first = cmp_vs_region(&run.first_id(), bits);
            let last = cmp_vs_region(&run.last_id(), bits);
            if first == Ordering::Less && last == Ordering::Less {
                before.push(run);
                continue;
            }
            if first == Ordering::Greater && last == Ordering::Greater {
                after.push(run);
                continue;
            }
            let lo = Self::partition_point(&run, |id| cmp_vs_region(id, bits) == Ordering::Less);
            let hi = Self::partition_point(&run, |id| cmp_vs_region(id, bits) != Ordering::Greater);
            if hi < run.len() {
                after.push(run.split_off(hi));
            }
            if lo > 0 && lo < run.len() {
                inside.push(run.split_off(lo));
                before.push(run);
            } else if lo == 0 {
                inside.push(run);
            } else {
                before.push(run);
            }
        }
        if inside.is_empty() && !bits.is_empty() {
            let mut restored = before;
            restored.extend(after);
            *self = Self::from_runs(restored);
            return Err(Error::NoSuchSubtree {
                bits: bits.iter().map(|s| s.bit()).collect(),
            });
        }
        let nodes_before: usize = inside.iter().map(|r| r.agg.total).sum();
        let all_live = inside.iter().all(|r| r.agg.live == r.agg.total);
        let has_dis = inside.iter().any(|r| r.has_dis());
        if all_live && !has_dis {
            let mut restored = before;
            restored.extend(inside);
            restored.extend(after);
            *self = Self::from_runs(restored);
            return Ok(FlattenOutcome::AlreadyCompact);
        }
        let mut atoms: Vec<A> = Vec::new();
        for run in &inside {
            atoms.extend(run.cells.iter().filter_map(|c| c.live().cloned()));
        }
        let nodes_after = atoms.len();
        let mut rebuilt = before;
        if !atoms.is_empty() {
            let n = atoms.len();
            let base = PosId::from_elems(bits.iter().map(|&s| PathElem::plain(s)).collect());
            let mut run = Run {
                pattern: Pattern::Exploded {
                    base,
                    depth: explode_depth(n),
                    start: 0,
                },
                cells: atoms.into_iter().map(Content::Live).collect(),
                live_bits: Vec::new(),
                agg: Agg::default(),
                hot_rev: 0,
                aux_state: 0,
            };
            run.recompute();
            rebuilt.push(run);
        }
        rebuilt.extend(after);
        *self = Self::from_runs(rebuilt);
        Ok(FlattenOutcome::Flattened {
            nodes_before,
            nodes_after,
        })
    }

    /// Asserts internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        fn walk<A: Atom, D: Disambiguator>(
            node: &Node<A, D>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            prev: &mut Option<PosId<D>>,
        ) -> std::result::Result<(), String> {
            let mut expect = Agg::default();
            match node {
                Node::Leaf { runs, agg } => {
                    if runs.len() > ARITY {
                        return Err(format!("leaf over arity: {}", runs.len()));
                    }
                    match leaf_depth {
                        Some(d) if *d != depth => {
                            return Err(format!("unbalanced: leaves at depths {d} and {depth}"));
                        }
                        None => *leaf_depth = Some(depth),
                        _ => {}
                    }
                    for run in runs {
                        if run.cells.is_empty() {
                            return Err("empty run".into());
                        }
                        if let Pattern::Packed { ids } = &run.pattern {
                            if ids.len() != run.cells.len() {
                                return Err("packed id/cell length mismatch".into());
                            }
                        }
                        let mut check = run.clone();
                        check.recompute();
                        if check.agg != run.agg {
                            return Err(format!(
                                "stale run aggregate: {:?} != {:?}",
                                run.agg, check.agg
                            ));
                        }
                        if check.live_bits != run.live_bits {
                            return Err("stale live bitmap".into());
                        }
                        if check.aux_state != run.aux_state {
                            return Err("stale streaming hash state".into());
                        }
                        for j in 0..run.len() {
                            let id = run.cell_id(j);
                            if let Some(p) = prev {
                                if *p >= id {
                                    return Err(format!("cell order violation at {:?}", id.repr()));
                                }
                            }
                            if matches!(run.cells[j], Content::Absent) {
                                return Err("absent cell stored".into());
                            }
                            *prev = Some(id);
                        }
                        expect.merge(&run.agg);
                    }
                    if *agg != expect {
                        return Err("stale leaf aggregate".into());
                    }
                }
                Node::Internal { children, agg } => {
                    if children.len() > ARITY {
                        return Err(format!("internal over arity: {}", children.len()));
                    }
                    if children.is_empty() {
                        return Err("empty internal node".into());
                    }
                    for child in children {
                        if child.is_empty() {
                            return Err("empty child".into());
                        }
                        walk(child, depth + 1, leaf_depth, prev)?;
                        expect.merge(child.agg());
                    }
                    if *agg != expect {
                        return Err("stale internal aggregate".into());
                    }
                }
            }
            Ok(())
        }
        let mut prev = None;
        let mut leaf_depth = None;
        walk(&self.root, 0, &mut leaf_depth, &mut prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::{Sdis, Udis};
    use crate::doc::Treedoc;
    use crate::flatten::flatten_subtree;
    use crate::ops::Op;
    use crate::site::SiteId;
    use crate::stats::DocStats;

    /// Drives a per-atom [`Treedoc`] to allocate realistic identifiers, and
    /// mirrors every op into a bare [`Tree`] and a [`RunTree`].
    struct Mirror<D: Disambiguator + crate::disambiguator::HasSource> {
        doc: Treedoc<char, D>,
        tree: Tree<char, D>,
        run: RunTree<char, D>,
        rev: u64,
    }

    impl<D: Disambiguator + crate::disambiguator::HasSource> Mirror<D> {
        fn new(site: u64) -> Self {
            Mirror {
                doc: Treedoc::new(SiteId::from_u64(site)),
                tree: Tree::new(),
                run: RunTree::new(),
                rev: 0,
            }
        }

        fn insert(&mut self, index: usize, c: char) {
            let op = self.doc.local_insert(index, c).expect("insert");
            self.apply(&op);
        }

        fn delete(&mut self, index: usize) {
            let op = self.doc.local_delete(index).expect("delete");
            self.apply(&op);
        }

        fn apply(&mut self, op: &Op<char, D>) {
            self.rev += 1;
            match op {
                Op::Insert { id, atom } => {
                    self.tree.insert(id, *atom, self.rev).expect("tree insert");
                    self.run.insert(id, *atom, self.rev).expect("run insert");
                }
                Op::Delete { id } => {
                    let a = self.tree.delete(id, self.rev).expect("tree delete");
                    let b = self.run.delete(id, self.rev).expect("run delete");
                    assert_eq!(a, b, "delete return mismatch at {:?}", id.repr());
                }
            }
        }

        fn assert_parity(&self) {
            self.run.check_invariants().expect("run invariants");
            let tree_cells: Vec<_> = self
                .tree
                .collect_cells()
                .into_iter()
                .map(|(id, c, _)| (id, c))
                .collect();
            let run_cells: Vec<_> = self
                .run
                .collect_cells()
                .into_iter()
                .map(|(id, c, _)| (id, c))
                .collect();
            assert_eq!(tree_cells, run_cells, "cell sets diverge");
            let ts = DocStats::measure(&self.tree);
            let rs = self.run.stats();
            assert_eq!(ts, rs, "stats diverge");
            let text: String = self.run.to_vec().into_iter().collect();
            assert_eq!(self.doc.to_string(), text, "document text diverges");
            for i in 0..self.run.live_len() {
                let id = self.run.id_of_live_index(i).expect("live id");
                assert!(self.run.get(&id).is_some_and(Content::is_live));
            }
        }
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn sequential_typing_coalesces_to_one_spine_run() {
        let mut m = Mirror::<Udis>::new(1);
        for (i, c) in ('a'..='z').cycle().take(500).enumerate() {
            m.insert(i, c);
        }
        m.assert_parity();
        // The first atom sits at the root mini; every subsequent append is
        // one spine step, so the whole burst coalesces into one run.
        assert_eq!(m.run.run_count(), 1, "append burst did not coalesce");
        assert_eq!(m.run.live_len(), 500);
    }

    #[test]
    fn prepend_burst_coalesces_to_one_left_spine() {
        let mut m = Mirror::<Udis>::new(1);
        for c in ('a'..='z').cycle().take(300) {
            m.insert(0, c);
        }
        m.assert_parity();
        assert!(
            m.run.run_count() <= 2,
            "prepend burst fragmented into {} runs",
            m.run.run_count()
        );
    }

    #[test]
    fn interior_edits_split_and_survive() {
        let mut m = Mirror::<Udis>::new(1);
        for (i, c) in ('a'..='z').cycle().take(100).enumerate() {
            m.insert(i, c);
        }
        m.insert(50, 'X');
        m.insert(25, 'Y');
        m.delete(10);
        m.delete(60);
        m.assert_parity();
    }

    #[test]
    fn random_differential_udis() {
        random_differential::<Udis>(2, 900);
    }

    #[test]
    fn random_differential_sdis() {
        random_differential::<Sdis>(3, 900);
    }

    fn random_differential<D: Disambiguator + crate::disambiguator::HasSource>(
        site: u64,
        ops: usize,
    ) {
        let mut m = Mirror::<D>::new(site);
        let mut rng = 0x5eed_0000 + site;
        for step in 0..ops {
            let len = m.doc.len();
            let roll = lcg(&mut rng) % 100;
            if len == 0 || roll < 60 {
                let at = (lcg(&mut rng) as usize) % (len + 1);
                let c = char::from(b'a' + (lcg(&mut rng) % 26) as u8);
                m.insert(at, c);
            } else {
                let at = (lcg(&mut rng) as usize) % len;
                m.delete(at);
            }
            if step % 97 == 0 {
                m.assert_parity();
            }
        }
        m.assert_parity();
    }

    #[test]
    fn flatten_differential_at_root() {
        for seed in 0..4u64 {
            let mut m = Mirror::<Udis>::new(seed + 10);
            let mut rng = seed;
            for _ in 0..200 {
                let len = m.doc.len();
                if len == 0 || lcg(&mut rng) % 100 < 65 {
                    let at = (lcg(&mut rng) as usize) % (len + 1);
                    m.insert(at, 'x');
                } else {
                    m.delete((lcg(&mut rng) as usize) % len);
                }
            }
            let a = flatten_subtree(&mut m.tree, &[]).expect("tree flatten");
            let b = m.run.flatten_region(&[]).expect("run flatten");
            assert_eq!(a, b, "flatten outcome diverges");
            m.tree.rebuild_counts();
            m.assert_parity();
        }
    }

    #[test]
    fn flatten_missing_region_errors_and_restores() {
        let mut m = Mirror::<Udis>::new(7);
        for i in 0..10 {
            m.insert(i, 'a');
        }
        let before = m.run.collect_cells();
        // An all-left path far below the document has no cells.
        let bits = [Side::Left; 40];
        let err = m.run.flatten_region(&bits).expect_err("no such subtree");
        assert!(matches!(err, Error::NoSuchSubtree { .. }));
        assert_eq!(m.run.collect_cells(), before, "failed flatten must restore");
        m.run.check_invariants().expect("invariants after restore");
    }

    #[test]
    fn exploded_store_is_one_run_with_o1_metrics() {
        let n = 200_000;
        let atoms: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let rt: RunTree<u8, Udis> = RunTree::from_exploded(atoms.clone());
        assert_eq!(rt.run_count(), 1, "exploded document must be a single run");
        assert_eq!(rt.live_len(), n);
        assert_eq!(rt.height(), explode_depth(n));
        for &i in &[0usize, 1, n / 2, n - 2, n - 1] {
            assert_eq!(rt.atom_at(i), Some(&atoms[i]), "atom_at({i})");
        }
        let stats = rt.stats();
        assert_eq!(stats.live_atoms, n);
        assert_eq!(stats.tombstones, 0);
        // The deepest leaf path of a depth-`d` complete tree has `d - 1`
        // branch bits and no disambiguators.
        assert_eq!(stats.pos_ids.max_bits, explode_depth(n) - 1);
        // Beyond the cell contents themselves (one `Content` per atom) and
        // the live bitmap (1 bit per atom), the index should cost a small
        // constant — not one tree node per atom.
        let cell_bytes = n * mem::size_of::<Content<u8>>() + n / 8 + 8;
        assert!(
            rt.index_bytes() < cell_bytes + 4 * 1024,
            "exploded index too large: {} bytes for {cell_bytes} of cells",
            rt.index_bytes()
        );
    }

    #[test]
    fn single_200k_char_spine_run_keeps_o1_metrics() {
        // The sequential-typing counterpart of the exploded test above — and
        // of the 200k-deep skinny-tree height test in `node.rs`: one run
        // holding a 200k-cell append spine, i.e. a document 200k major-node
        // levels deep. Built directly (materialising every identifier would
        // cost a quadratic 20G path elements); the assertions are about what
        // the store does *without* materialising them.
        let n = 200_000;
        let mut doc = Treedoc::<u8, Udis>::new(SiteId::from_u64(3));
        let Op::Insert { id: anchor, .. } = doc.local_insert(0, 0u8).unwrap() else {
            unreachable!("insert op")
        };
        let mut run = Run {
            pattern: Pattern::Spine {
                anchor: anchor.clone(),
                side: Side::Right,
            },
            cells: (0..n).map(|i| Content::Live((i % 251) as u8)).collect(),
            live_bits: Vec::new(),
            agg: Agg::default(),
            hot_rev: 0,
            aux_state: 0,
        };
        run.recompute();
        let rt = RunTree::from_runs(vec![run]);

        assert_eq!(rt.run_count(), 1, "a typing run must stay one run");
        assert_eq!(rt.live_len(), n);
        assert_eq!(rt.height(), anchor.depth() + n, "height from the aggregate");
        // Counter-guided descent: index lookups never walk the 200k-deep
        // logical tree.
        for &i in &[0usize, 1, n / 2, n - 2, n - 1] {
            assert_eq!(rt.atom_at(i), Some(&((i % 251) as u8)), "atom_at({i})");
        }
        assert_eq!(rt.atom_at(n), None);
        // Materialising the deepest identifier is the caller's O(depth), and
        // looking it back up binary-searches the run without a tree walk.
        let last = rt.id_of_live_index(n - 1).expect("last live id");
        assert_eq!(last.depth(), anchor.depth() + n - 1);
        assert_eq!(rt.get(&last), Some(&Content::Live(((n - 1) % 251) as u8)));
        let stats = rt.stats();
        assert_eq!(stats.live_atoms, n);
        assert_eq!(
            stats.pos_ids.max_bits,
            anchor.depth() + (n - 1) + anchor.dis_count() * Udis::ACCOUNTED_BYTES * 8
        );
        // One anchor identifier, the cells and a bitmap — not a node per
        // level of a 200k-deep tree.
        let cell_bytes = n * mem::size_of::<Content<u8>>() + n / 8 + 8;
        assert!(
            rt.index_bytes() < cell_bytes + 4 * 1024,
            "spine index too large: {} bytes",
            rt.index_bytes()
        );
    }

    #[test]
    fn tree_round_trip_preserves_cells_and_recoalesces() {
        let mut m = Mirror::<Udis>::new(4);
        for (i, c) in ('a'..='z').cycle().take(400).enumerate() {
            m.insert(i, c);
        }
        m.insert(100, 'Q');
        m.delete(7);
        let tree = m.run.to_tree();
        let cells_direct = m.run.collect_cells();
        let cells_via_tree = tree.collect_cells();
        let strip = |v: Vec<(PosId<Udis>, Content<char>, u64)>| {
            v.into_iter().map(|(id, c, _)| (id, c)).collect::<Vec<_>>()
        };
        assert_eq!(strip(cells_direct), strip(cells_via_tree.clone()));
        let back = RunTree::from_cells(cells_via_tree);
        back.check_invariants().expect("round-trip invariants");
        assert_eq!(back.to_vec(), m.run.to_vec());
        assert!(
            back.run_count() <= m.run.run_count() + 2,
            "round trip lost coalescing: {} -> {}",
            m.run.run_count(),
            back.run_count()
        );
    }

    /// From-scratch reference digest: hash every cell with its materialised
    /// identifier and fold in document order. The incremental digest must
    /// always equal this.
    fn reference_digest<A: Atom, D: Disambiguator>(rt: &RunTree<A, D>) -> u64 {
        let mut digest = 0u64;
        for (id, c, _) in rt.collect_cells() {
            digest = digest
                .wrapping_mul(DIGEST_BASE)
                .wrapping_add(cell_hash(&id, &c));
        }
        digest
    }

    #[test]
    fn incremental_digest_matches_from_scratch_rehash() {
        let mut m = Mirror::<Sdis>::new(6);
        let mut rng = 0xd16e57u64;
        for step in 0..600 {
            let len = m.doc.len();
            if len == 0 || lcg(&mut rng) % 100 < 60 {
                let at = (lcg(&mut rng) as usize) % (len + 1);
                let c = char::from(b'a' + (lcg(&mut rng) % 26) as u8);
                m.insert(at, c);
            } else {
                m.delete((lcg(&mut rng) as usize) % len);
            }
            if step % 61 == 0 {
                assert_eq!(m.run.digest(), reference_digest(&m.run), "step {step}");
            }
        }
        assert_eq!(m.run.digest(), reference_digest(&m.run));
    }

    #[test]
    fn digest_is_independent_of_run_fragmentation() {
        // The same cell set laid out by incremental edits vs rebuilt from a
        // flat cell list fragments into different runs — digests must agree.
        let mut m = Mirror::<Udis>::new(8);
        for (i, c) in ('a'..='z').cycle().take(300).enumerate() {
            m.insert(i, c);
        }
        m.insert(17, 'X');
        m.delete(40);
        m.insert(0, 'Y');
        let rebuilt = RunTree::<char, Udis>::from_cells(m.run.collect_cells());
        assert_eq!(m.run.digest(), rebuilt.digest());
        assert_eq!(m.run.node_count(), rebuilt.node_count());
    }

    #[test]
    fn range_digests_compose_to_the_root() {
        let mut m = Mirror::<Sdis>::new(11);
        for (i, c) in ('a'..='z').cycle().take(200).enumerate() {
            m.insert(i, c);
        }
        m.delete(5);
        m.delete(100);
        let total = m.run.node_count();
        // Split at arbitrary ranks and check the pieces merge to the root.
        for split in [1, 7, total / 2, total - 1] {
            let mid = m.run.id_at_rank(split).expect("rank in range");
            let (dl, nl) = m.run.range_digest(None, Some(&mid));
            let (dr, nr) = m.run.range_digest(Some(&mid), None);
            assert_eq!(nl, split);
            assert_eq!(nl + nr, total);
            assert_eq!(digest_merge(dl, dr, nr as u64), m.run.digest());
        }
        let (all, n) = m.run.range_digest(None, None);
        assert_eq!((all, n), (m.run.digest(), total));
    }

    #[test]
    fn integrate_cells_converges_a_stale_replica() {
        // Build a document, then replay a prefix of its cells into a fresh
        // store and integrate the missing suffix by range.
        let mut m = Mirror::<Sdis>::new(12);
        for (i, c) in ('a'..='z').cycle().take(120).enumerate() {
            m.insert(i, c);
        }
        for i in [3usize, 40, 80] {
            m.delete(i);
        }
        let cells = m.run.collect_cells();
        let mut stale = RunTree::<char, Sdis>::new();
        for (id, c, rev) in cells.iter().take(cells.len() / 3) {
            stale.integrate_cell(id, c.clone(), *rev).expect("seed");
        }
        assert_ne!(stale.digest(), m.run.digest());
        for (id, c, rev) in &cells {
            stale.integrate_cell(id, c.clone(), *rev).expect("catch up");
        }
        stale.check_invariants().expect("integrated invariants");
        assert_eq!(stale.digest(), m.run.digest());
        assert_eq!(stale.to_vec(), m.run.to_vec());
        // Idempotence: integrating everything again changes nothing.
        for (id, c, rev) in &cells {
            assert!(!stale.integrate_cell(id, c.clone(), *rev).expect("noop"));
        }
        assert_eq!(stale.digest(), m.run.digest());
    }

    #[test]
    fn tombstone_dominates_live_dominates_ghost() {
        let mut m = Mirror::<Sdis>::new(13);
        m.insert(0, 'a');
        m.insert(1, 'b');
        let id = m.run.id_of_live_index(1).expect("live id");
        let mut other = RunTree::<char, Sdis>::from_cells(m.run.collect_cells());
        // Tombstone wins over live…
        assert!(other
            .integrate_cell(&id, Content::Tombstone, 9)
            .expect("tombstone"));
        // …and live never resurrects a tombstone.
        assert!(!other
            .integrate_cell(&id, Content::Live('b'), 10)
            .expect("no resurrect"));
        assert!(matches!(other.get(&id), Some(Content::Tombstone)));
        other.check_invariants().expect("invariants");
    }

    #[test]
    fn spine_step_recognises_append_chains() {
        let d0 = Udis::new(5, SiteId::from_u64(1));
        let anchor: PosId<Udis> = PosId::from_elems(vec![PathElem::mini(Side::Right, d0)]);
        let next = spine_cell_id(&anchor, Side::Right, 1);
        assert_eq!(spine_step(&anchor, &next), Some(Side::Right));
        let next2 = spine_cell_id(&anchor, Side::Right, 2);
        assert_eq!(spine_step(&next, &next2), Some(Side::Right));
        assert_eq!(spine_step(&anchor, &next2), None, "skipping a step");
        let left = spine_cell_id(&anchor, Side::Left, 1);
        assert_eq!(spine_step(&anchor, &left), Some(Side::Left));
    }

    #[test]
    fn infix_path_matches_explode_layout() {
        // Depth-3 complete tree infix order: LL, L, LR, root, RL, R, RR.
        let paths: Vec<Vec<Side>> = (0..7).map(|k| infix_path(3, k)).collect();
        use Side::{Left as L, Right as R};
        assert_eq!(
            paths,
            vec![
                vec![L, L],
                vec![L],
                vec![L, R],
                vec![],
                vec![R, L],
                vec![R],
                vec![R, R],
            ]
        );
        for (k, path) in paths.iter().enumerate() {
            assert_eq!(infix_len(3, k), path.len());
        }
    }
}
