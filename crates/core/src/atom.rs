//! Atoms: the editable elements of the shared buffer.
//!
//! The paper deliberately leaves the atom granularity open (§2): an atom may
//! be a character, a line (used for the LaTeX/C++/Java traces in §5), a whole
//! paragraph (used for the Wikipedia traces), or any non-editable embedded
//! object. The CRDT is generic over the atom type; the only requirements are
//! cheap cloning and a way to account its size for the overhead model.

use std::fmt::Debug;

use serde::{de::DeserializeOwned, Serialize};

use crate::hash::ContentHash;

/// An element of the shared sequence.
///
/// Implemented for `char`, `String`, `Vec<u8>` and the unsigned integers;
/// user types qualify by meeting the bounds (including
/// [`ContentHash`], which the run store's incremental merkle digest hashes
/// cells with).
pub trait Atom:
    Clone + Eq + Debug + Send + Sync + Serialize + DeserializeOwned + ContentHash + 'static
{
    /// Size of the atom's *content* in bytes, used when relating metadata
    /// overhead to document size (Table 1 reports overhead relative to the
    /// document size in bytes).
    fn content_bytes(&self) -> usize;
}

impl Atom for char {
    fn content_bytes(&self) -> usize {
        self.len_utf8()
    }
}

impl Atom for String {
    fn content_bytes(&self) -> usize {
        self.len()
    }
}

impl Atom for Vec<u8> {
    fn content_bytes(&self) -> usize {
        self.len()
    }
}

impl Atom for u8 {
    fn content_bytes(&self) -> usize {
        1
    }
}

impl Atom for u32 {
    fn content_bytes(&self) -> usize {
        4
    }
}

impl Atom for u64 {
    fn content_bytes(&self) -> usize {
        8
    }
}

/// Atom granularity used when splitting a text document into atoms.
///
/// The paper's evaluation uses [`Granularity::Line`] for LaTeX and source
/// code and [`Granularity::Paragraph`] for Wikipedia pages (§5); characters
/// are supported for interactive-editor style workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, serde::Deserialize)]
pub enum Granularity {
    /// One atom per Unicode scalar value.
    Character,
    /// One atom per line (split on `'\n'`, terminator not included).
    Line,
    /// One atom per paragraph (split on blank lines).
    Paragraph,
}

impl Granularity {
    /// Splits `text` into atoms at this granularity.
    pub fn split(&self, text: &str) -> Vec<String> {
        match self {
            Granularity::Character => text.chars().map(|c| c.to_string()).collect(),
            Granularity::Line => {
                if text.is_empty() {
                    Vec::new()
                } else {
                    text.lines().map(|l| l.to_string()).collect()
                }
            }
            Granularity::Paragraph => text
                .split("\n\n")
                .filter(|p| !p.trim().is_empty())
                .map(|p| p.to_string())
                .collect(),
        }
    }

    /// Joins atoms back into a text document (inverse of [`split`] up to
    /// trailing separators).
    ///
    /// [`split`]: Granularity::split
    pub fn join(&self, atoms: &[String]) -> String {
        match self {
            Granularity::Character => atoms.concat(),
            Granularity::Line => atoms.join("\n"),
            Granularity::Paragraph => atoms.join("\n\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_and_string_sizes() {
        assert_eq!('a'.content_bytes(), 1);
        assert_eq!('é'.content_bytes(), 2);
        assert_eq!(String::from("hello").content_bytes(), 5);
        assert_eq!(vec![1u8, 2, 3].content_bytes(), 3);
    }

    #[test]
    fn line_split_round_trips() {
        let text = "alpha\nbeta\ngamma";
        let atoms = Granularity::Line.split(text);
        assert_eq!(atoms, vec!["alpha", "beta", "gamma"]);
        assert_eq!(Granularity::Line.join(&atoms), text);
    }

    #[test]
    fn paragraph_split_skips_blank_paragraphs() {
        let text = "first para\nstill first\n\nsecond para\n\n\nthird";
        let atoms = Granularity::Paragraph.split(text);
        assert_eq!(atoms.len(), 3);
        assert!(atoms[0].contains("still first"));
    }

    #[test]
    fn character_split_round_trips() {
        let text = "héllo";
        let atoms = Granularity::Character.split(text);
        assert_eq!(atoms.len(), 5);
        assert_eq!(Granularity::Character.join(&atoms), text);
    }

    #[test]
    fn empty_text_has_no_atoms() {
        assert!(Granularity::Line.split("").is_empty());
        assert!(Granularity::Character.split("").is_empty());
        assert!(Granularity::Paragraph.split("").is_empty());
    }
}
