//! Reference implementation of position identifiers as a plain owned
//! `Vec<PathElem>`, kept as the differential-testing oracle for the chunked,
//! structurally shared [`PosId`].
//!
//! This is (modulo the type name) the representation the crate used before
//! the shared-prefix rewrite: every operation walks the element vector, with
//! no caching and no sharing. It is deliberately naive — the tests in
//! `tests/run_differential.rs` pin the production `PosId` against it on total
//! order, wire bytes and tree digests over random edit schedules, so any
//! divergence introduced by the chunked fast paths shows up as a test
//! failure, not a silent reordering.

use std::cmp::Ordering;

use crate::disambiguator::Disambiguator;
use crate::path::{PathElem, PosId, Side};

/// A position identifier stored as an owned element vector (the pre-arena
/// representation), used as a comparison oracle in differential tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RefPosId<D> {
    elems: Vec<PathElem<D>>,
}

/// Infix-order region of a major node, mirroring the private enum inside
/// `path.rs` (left subtree < plain slot < minis < right subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Region {
    LeftSubtree,
    PlainSlot,
    Minis,
    RightSubtree,
}

impl<D> RefPosId<D> {
    /// The root identifier (empty path).
    pub const fn root() -> Self {
        RefPosId { elems: Vec::new() }
    }

    /// Builds an identifier from its elements.
    pub fn from_elems(elems: Vec<PathElem<D>>) -> Self {
        RefPosId { elems }
    }

    /// Mirrors a production identifier into the reference representation.
    pub fn from_pos_id(id: &PosId<D>) -> Self
    where
        D: Clone,
    {
        RefPosId { elems: id.elems() }
    }

    /// Rebuilds the production representation from this reference.
    pub fn to_pos_id(&self) -> PosId<D>
    where
        D: Clone,
    {
        PosId::from_elems(self.elems.clone())
    }

    /// The path elements.
    pub fn elems(&self) -> &[PathElem<D>] {
        &self.elems
    }

    /// Number of path elements.
    pub fn depth(&self) -> usize {
        self.elems.len()
    }

    fn region_at(&self, idx: usize) -> Region {
        match self.elems.get(idx) {
            None => unreachable!("region_at called past the end of the path"),
            Some(e) if e.dis.is_some() => Region::Minis,
            Some(_) => match self.elems.get(idx + 1) {
                None => Region::PlainSlot,
                Some(next) if next.side == Side::Left => Region::LeftSubtree,
                Some(_) => Region::RightSubtree,
            },
        }
    }
}

impl<D: Disambiguator> RefPosId<D> {
    /// The original element-wise infix comparison (§3.1), exactly as the
    /// pre-arena `PosId::cmp` implemented it.
    fn infix_cmp(&self, other: &RefPosId<D>) -> Ordering {
        let n = self.elems.len().min(other.elems.len());
        for i in 0..n {
            let a = &self.elems[i];
            let b = &other.elems[i];
            if a.side != b.side {
                return a.side.cmp(&b.side);
            }
            match (&a.dis, &b.dis) {
                (None, None) => continue,
                (Some(da), Some(db)) => match da.cmp(db) {
                    Ordering::Equal => continue,
                    o => return o,
                },
                (None, Some(_)) => return self.region_at(i).cmp(&Region::Minis),
                (Some(_), None) => return Region::Minis.cmp(&other.region_at(i)),
            }
        }
        match self.elems.len().cmp(&other.elems.len()) {
            Ordering::Equal => Ordering::Equal,
            Ordering::Less => {
                if other.elems[n].side == Side::Right {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            Ordering::Greater => {
                if self.elems[n].side == Side::Right {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
        }
    }
}

impl<D: Disambiguator> PartialOrd for RefPosId<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<D: Disambiguator> Ord for RefPosId<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.infix_cmp(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::Sdis;
    use crate::site::SiteId;
    use proptest::prelude::*;

    fn s(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    fn arb_elem() -> impl Strategy<Value = PathElem<Sdis>> {
        (0u8..2, proptest::option::of(0u64..4)).prop_map(|(bit, dis)| PathElem {
            side: Side::from_bit(bit),
            dis: dis.map(s),
        })
    }

    fn arb_posid() -> impl Strategy<Value = PosId<Sdis>> {
        proptest::collection::vec(arb_elem(), 0..10).prop_map(PosId::from_elems)
    }

    proptest! {
        /// The chunked `PosId` order is exactly the reference order.
        #[test]
        fn order_matches_reference(a in arb_posid(), b in arb_posid()) {
            let ra = RefPosId::from_pos_id(&a);
            let rb = RefPosId::from_pos_id(&b);
            prop_assert_eq!(a.cmp(&b), ra.cmp(&rb));
            prop_assert_eq!(a == b, ra == rb);
        }

        /// Round-tripping through the reference representation is lossless.
        #[test]
        fn round_trip_through_reference(a in arb_posid()) {
            prop_assert_eq!(RefPosId::from_pos_id(&a).to_pos_id(), a);
        }
    }
}
