//! Structural clean-up: `explode` and `flatten` (§4.2, Algorithm 2).
//!
//! The edit-oriented tree representation carries metadata (paths,
//! disambiguators, tombstones). Quiescent — "cold" — regions of the document
//! do not need any of it: they can be compacted into a canonical complete
//! binary tree whose identifiers are plain bit strings (or, equivalently,
//! kept as a flat array with no metadata at all; see
//! [`storage`](crate::storage)).
//!
//! * [`explode`] maps an atom array to that canonical tree (Algorithm 2);
//!   it is deterministic, so every replica that applies it to the same array
//!   produces the same structure.
//! * [`flatten_subtree`] replaces a subtree by the canonical tree of its live
//!   atoms, discarding tombstones and disambiguators. Because it *renames*
//!   identifiers it does not commute with concurrent edits and must only be
//!   applied once a distributed commitment (see `treedoc-commit`) has
//!   established that no replica has a concurrent edit in that subtree
//!   (§4.2.1). Within a single replica — or a replay harness — it can be
//!   called directly.
//!
//! The cold-subtree heuristic of §5.1 is provided by
//! [`Tree::find_cold_subtrees`](crate::tree::Tree::find_cold_subtrees) and
//! driven from the document layer ([`Treedoc::flatten_cold`]).
//!
//! [`Treedoc::flatten_cold`]: crate::Treedoc::flatten_cold

use crate::atom::Atom;
use crate::disambiguator::Disambiguator;
use crate::error::Result;
use crate::node::{Content, MajorNode};
use crate::path::Side;
use crate::tree::Tree;

/// Result of a flatten attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenOutcome {
    /// The subtree was compacted; the field reports how many occupied slots
    /// (tombstones, ghosts, mini-nodes) were reclaimed.
    Flattened {
        /// Occupied slots before compaction.
        nodes_before: usize,
        /// Occupied slots after compaction (= number of live atoms).
        nodes_after: usize,
    },
    /// Nothing to do: the subtree was already in canonical form.
    AlreadyCompact,
}

/// Depth of the complete binary tree used to store `len` atoms
/// (Algorithm 2: `⌈log₂(len + 1)⌉`).
pub fn explode_depth(len: usize) -> usize {
    // ceil(log2(len + 1)) without floating point.
    (usize::BITS - len.leading_zeros()) as usize
}

/// Builds the canonical major-node tree holding `atoms` (Algorithm 2,
/// `explode`): a complete binary tree of [`explode_depth`] levels whose infix
/// order lists the atoms; positions beyond the last atom are removed.
pub fn explode_node<A: Atom, D: Disambiguator>(atoms: &[A]) -> MajorNode<A, D> {
    // Algorithm 2: allocate a complete binary tree of ⌈log₂(n+1)⌉ levels,
    // assign its positions to the atoms in infix order, remove the unused
    // positions. Positions whose own slot stays unassigned but whose left
    // subtree holds atoms remain as structural nodes with an absent slot.
    fn build<A: Atom, D: Disambiguator>(atoms: &[A], depth: usize) -> MajorNode<A, D> {
        let mut node = MajorNode::empty();
        if atoms.is_empty() || depth == 0 {
            return node;
        }
        let left_capacity = (1usize << (depth - 1)) - 1;
        let (left, right) = if atoms.len() > left_capacity {
            node.plain = Content::Live(atoms[left_capacity].clone());
            (&atoms[..left_capacity], &atoms[left_capacity + 1..])
        } else {
            (atoms, &atoms[..0])
        };
        if !left.is_empty() {
            *node.child_or_create(Side::Left) = build(left, depth - 1);
        }
        if !right.is_empty() {
            *node.child_or_create(Side::Right) = build(right, depth - 1);
        }
        node.recount();
        node
    }
    build(atoms, explode_depth(atoms.len()))
}

/// Builds a whole [`Tree`] from an atom array (the initiator and replay
/// versions of `explode` must produce exactly the same structure — this
/// function is deterministic, so they do).
pub fn explode<A: Atom, D: Disambiguator>(atoms: &[A]) -> Tree<A, D> {
    Tree::from_root(explode_node(atoms))
}

/// Compacts the subtree of `tree` rooted at the plain bit path `bits`:
/// collects its live atoms in document order and replaces the subtree with
/// their canonical `explode` layout.
///
/// Returns an error if no subtree exists at `bits`.
pub fn flatten_subtree<A: Atom, D: Disambiguator>(
    tree: &mut Tree<A, D>,
    bits: &[Side],
) -> Result<FlattenOutcome> {
    let atoms = tree.subtree_live_atoms(bits)?;
    let nodes_before = tree
        .subtree(bits)
        .map(|n| n.total_count())
        .unwrap_or_default();
    if nodes_before == atoms.len() {
        // Every slot is a live plain atom already in canonical layout only if
        // additionally no disambiguators remain; re-exploding is cheap and
        // idempotent, so only skip the trivial no-op case.
        let has_dis = {
            let mut any = false;
            if let Some(sub) = tree.subtree(bits) {
                any = !sub.minis().is_empty();
                // A deeper scan is done by the caller through statistics when
                // it matters; a conservative `false` just means we recompact.
                if !any {
                    any = subtree_has_minis(sub);
                }
            }
            any
        };
        if !has_dis {
            return Ok(FlattenOutcome::AlreadyCompact);
        }
    }
    let new_root = explode_node(&atoms);
    tree.replace_subtree(bits, new_root)?;
    Ok(FlattenOutcome::Flattened {
        nodes_before,
        nodes_after: atoms.len(),
    })
}

fn subtree_has_minis<A, D: Disambiguator>(node: &MajorNode<A, D>) -> bool {
    if !node.minis().is_empty() {
        return true;
    }
    [Side::Left, Side::Right]
        .into_iter()
        .filter_map(|s| node.child(s))
        .any(subtree_has_minis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::Sdis;
    use crate::path::{PathElem, PosId};
    use crate::site::SiteId;

    fn sd(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    fn sid(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(sd),
                })
                .collect(),
        )
    }

    #[test]
    fn explode_depth_matches_algorithm_2() {
        assert_eq!(explode_depth(0), 0);
        assert_eq!(explode_depth(1), 1);
        assert_eq!(explode_depth(2), 2);
        assert_eq!(explode_depth(3), 2);
        assert_eq!(explode_depth(4), 3);
        assert_eq!(explode_depth(7), 3);
        assert_eq!(explode_depth(8), 4);
    }

    #[test]
    fn explode_preserves_content_and_order() {
        for n in 0..40usize {
            let atoms: Vec<u32> = (0..n as u32).collect();
            let tree: Tree<u32, Sdis> = explode(&atoms);
            assert_eq!(tree.to_vec(), atoms, "n = {n}");
            assert_eq!(tree.live_len(), n);
            assert_eq!(tree.node_count(), n, "no metadata slots after explode");
            tree.check_invariants().unwrap();
        }
    }

    #[test]
    fn explode_is_balanced() {
        let atoms: Vec<u32> = (0..100).collect();
        let tree: Tree<u32, Sdis> = explode(&atoms);
        assert_eq!(tree.height(), explode_depth(100));
        // Every identifier is a plain bit string: no disambiguators at all.
        tree.for_each_slot(|slot| {
            assert!(slot.dis.is_none());
            assert_eq!(slot.dis_count, 0);
            assert!(slot.bits.len() <= explode_depth(100));
        });
    }

    #[test]
    fn explode_zero_and_one() {
        let empty: Tree<u32, Sdis> = explode(&[]);
        assert!(empty.is_empty());
        let one: Tree<u32, Sdis> = explode(&[42]);
        assert_eq!(one.to_vec(), vec![42]);
        assert_eq!(one.height(), 1);
    }

    #[test]
    fn flatten_discards_tombstones_and_disambiguators() {
        let mut tree: Tree<char, Sdis> = Tree::new();
        tree.insert(&sid(&[]), 'c', 1).unwrap();
        tree.insert(&sid(&[(0, Some(1))]), 'b', 1).unwrap();
        tree.insert(&sid(&[(0, None), (0, Some(1))]), 'a', 1)
            .unwrap();
        tree.insert(&sid(&[(1, Some(2))]), 'd', 1).unwrap();
        tree.delete(&sid(&[(0, Some(1))]), 2).unwrap();
        assert_eq!(tree.to_vec(), vec!['a', 'c', 'd']);
        assert_eq!(tree.node_count(), 4, "one tombstone still stored");

        let outcome = flatten_subtree(&mut tree, &[]).unwrap();
        assert_eq!(
            outcome,
            FlattenOutcome::Flattened {
                nodes_before: 4,
                nodes_after: 3
            }
        );
        assert_eq!(tree.to_vec(), vec!['a', 'c', 'd']);
        assert_eq!(tree.node_count(), 3);
        tree.for_each_slot(|s| assert_eq!(s.dis_count, 0));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn flatten_of_subtree_keeps_outside_order() {
        let mut tree: Tree<char, Sdis> = Tree::new();
        tree.insert(&sid(&[]), 'm', 1).unwrap();
        // Build an unbalanced right spine: m < p < q < r.
        tree.insert(&sid(&[(1, Some(1))]), 'p', 1).unwrap();
        tree.insert(&sid(&[(1, None), (1, Some(1))]), 'q', 1)
            .unwrap();
        tree.insert(&sid(&[(1, None), (1, None), (1, Some(1))]), 'r', 1)
            .unwrap();
        // And something on the left that must stay untouched.
        tree.insert(&sid(&[(0, Some(2))]), 'a', 1).unwrap();
        assert_eq!(tree.to_vec(), vec!['a', 'm', 'p', 'q', 'r']);

        flatten_subtree(&mut tree, &[Side::Right]).unwrap();
        assert_eq!(tree.to_vec(), vec!['a', 'm', 'p', 'q', 'r']);
        // The right subtree is now a two-level complete tree.
        assert_eq!(tree.subtree(&[Side::Right]).unwrap().height(), 2);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn flatten_already_compact_is_noop() {
        let atoms: Vec<u32> = (0..10).collect();
        let mut tree: Tree<u32, Sdis> = explode(&atoms);
        let outcome = flatten_subtree(&mut tree, &[]).unwrap();
        assert_eq!(outcome, FlattenOutcome::AlreadyCompact);
        assert_eq!(tree.to_vec(), atoms);
    }

    #[test]
    fn flatten_missing_subtree_errors() {
        let mut tree: Tree<u32, Sdis> = explode(&[1, 2, 3]);
        assert!(flatten_subtree(&mut tree, &[Side::Right, Side::Right, Side::Left]).is_err());
    }

    #[test]
    fn flatten_empty_subtree_produces_empty_structure() {
        let mut tree: Tree<char, Sdis> = Tree::new();
        tree.insert(&sid(&[(0, Some(1))]), 'a', 1).unwrap();
        tree.delete(&sid(&[(0, Some(1))]), 2).unwrap();
        assert_eq!(tree.node_count(), 1);
        flatten_subtree(&mut tree, &[]).unwrap();
        assert_eq!(tree.node_count(), 0);
        assert!(tree.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// explode is the identity on content for any atom array.
            #[test]
            fn explode_round_trips(atoms in proptest::collection::vec(0u32..1000, 0..200)) {
                let tree: Tree<u32, Sdis> = explode(&atoms);
                prop_assert_eq!(tree.to_vec(), atoms.clone());
                prop_assert_eq!(tree.node_count(), atoms.len());
                prop_assert!(tree.check_invariants().is_ok());
            }

            /// explode produces a tree no deeper than ⌈log₂(n+1)⌉.
            #[test]
            fn explode_depth_bound(atoms in proptest::collection::vec(0u32..1000, 1..200)) {
                let tree: Tree<u32, Sdis> = explode(&atoms);
                prop_assert!(tree.height() <= explode_depth(atoms.len()));
            }

            /// flatten preserves document content whatever the prior edits.
            #[test]
            fn flatten_preserves_content(seed_atoms in proptest::collection::vec(0u32..100, 1..40),
                                         deletions in proptest::collection::vec(0usize..40, 0..20)) {
                let mut tree: Tree<u32, Sdis> = explode(&seed_atoms);
                for d in deletions {
                    if tree.live_len() == 0 { break; }
                    let idx = d % tree.live_len();
                    let id = tree.id_of_live_index(idx).unwrap();
                    tree.delete(&id, 1).unwrap();
                }
                let before = tree.to_vec();
                flatten_subtree(&mut tree, &[]).unwrap();
                prop_assert_eq!(tree.to_vec(), before);
                prop_assert_eq!(tree.node_count(), tree.live_len());
            }
        }
    }
}
