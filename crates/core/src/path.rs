//! Position identifiers: paths in the extended binary tree (§3.1).
//!
//! A [`PosId`] is a sequence of [`PathElem`]s. Each element carries one bit
//! (left / right) and, optionally, a disambiguator:
//!
//! * an element **without** a disambiguator refers to the children of the
//!   corresponding *major node* (the common, sequential-editing case);
//! * an element **with** a disambiguator selects a specific *mini-node* of
//!   that major node — either as the final element (the identified atom is
//!   that mini-node) or as an interior element (the path descends through
//!   that mini-node's own subtree, which only happens after inserts between
//!   mini-siblings, Fig. 4 of the paper).
//!
//! # Representation
//!
//! Logically an identifier is still the element sequence above, but it is
//! stored as a *persistent, structurally shared* chain of run-length-encoded
//! chunks (`Seg`): consecutive disambiguator-free elements on the same side
//! collapse into one `Plains { side, count }` chunk, and each disambiguated
//! element is its own `Mini` chunk. Chunks link to their parent through an
//! [`Arc`], so
//!
//! * cloning an identifier is one reference-count bump (O(1));
//! * a child identifier shares its entire prefix with the parent it was
//!   derived from (prefix sharing by construction);
//! * the deep spine produced by sequential typing — thousands of plain
//!   elements followed by one mini — is **three chunks** regardless of
//!   depth, so extending, comparing or hashing spine identifiers no longer
//!   walks the whole document path.
//!
//! Every chunk caches the total element count (`depth`), the disambiguator
//! count and a polynomial *shape hash* of the `(side, has-disambiguator)`
//! sequence, so equality checks reject mismatches in O(1) and comparisons
//! walk only the chunks past the shared prefix (pointer-equal chunks are
//! skipped wholesale).
//!
//! The chunk decomposition is kept *canonical* — plain elements are always
//! merged into a maximal same-side `Plains` chunk — so two identifiers with
//! the same logical element sequence have the same chunk sequence, and chunk
//! comparison is exactly element comparison.
//!
//! # Ordering
//!
//! Identifiers are ordered by an infix walk of the extended tree: a major
//! node's left child comes first, then its disambiguator-free atom slot (only
//! present after a `flatten`), then its mini-nodes in disambiguator order
//! (each mini-node surrounded by its own left and right subtrees), then the
//! major node's right child. [`PosId::cmp`] implements exactly this order.
//!
//! The paper's formal rules (§3.1) compare path elements pairwise; taken
//! literally they do not say how a disambiguator-free element compares with a
//! disambiguated one referring to the same side (e.g. the paper's own example
//! `Y = [1·0·(0:dY)]` versus `Z = [1·0·0·(1:dZ)]`, where `Z` must sort after
//! `Y` because it is the right child of `Y`'s major node). We resolve this —
//! as the example and the infix-walk definition require — by looking at which
//! *region* of the shared major node each identifier falls in:
//! `left subtree < plain atom slot < mini-nodes < right subtree`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use crate::disambiguator::Disambiguator;
use crate::hash::DIGEST_BASE;

/// One bit of a tree path: descend to the left or to the right child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The `0` branch: everything below it precedes the current node.
    Left = 0,
    /// The `1` branch: everything below it follows the current node.
    Right = 1,
}

impl Side {
    /// Returns the bit value (0 or 1).
    pub const fn bit(self) -> u8 {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    /// Builds a side from a bit value.
    pub const fn from_bit(bit: u8) -> Side {
        if bit == 0 {
            Side::Left
        } else {
            Side::Right
        }
    }

    /// The opposite side.
    pub const fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// One element of a position identifier: a branch bit plus an optional
/// disambiguator.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathElem<D> {
    /// Which child of the current node the path descends to.
    pub side: Side,
    /// `Some(d)` selects mini-node `d` of the major node reached by `side`;
    /// `None` refers to the major node itself (its plain atom slot or its
    /// plain children).
    pub dis: Option<D>,
}

impl<D> PathElem<D> {
    /// A plain (disambiguator-free) element.
    pub const fn plain(side: Side) -> Self {
        PathElem { side, dis: None }
    }

    /// An element selecting mini-node `dis` on the `side` child.
    pub const fn mini(side: Side, dis: D) -> Self {
        PathElem {
            side,
            dis: Some(dis),
        }
    }

    /// Drops the disambiguator, keeping only the branch bit.
    pub fn to_plain(&self) -> PathElem<D>
    where
        D: Clone,
    {
        PathElem {
            side: self.side,
            dis: None,
        }
    }
}

impl<D: fmt::Debug> fmt::Debug for PathElem<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.dis {
            None => write!(f, "{}", self.side.bit()),
            Some(d) => write!(f, "({}:{:?})", self.side.bit(), d),
        }
    }
}

/// The region of a major node an identifier falls in, in infix order.
///
/// Used internally by the comparison routine; exposed for tests and for the
/// allocation logic which reasons about the same regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Region {
    /// Inside the major node's plain left subtree.
    LeftSubtree,
    /// The major node's own (disambiguator-free) atom slot.
    PlainSlot,
    /// One of the mini-nodes or their subtrees (ordered by disambiguator
    /// separately).
    Minis,
    /// Inside the major node's plain right subtree.
    RightSubtree,
}

// ---------------------------------------------------------------------------
// Shared chunk representation
// ---------------------------------------------------------------------------

/// One run-length-encoded chunk of a path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Seg<D> {
    /// A single element carrying a disambiguator.
    Mini(Side, D),
    /// `count >= 1` consecutive disambiguator-free elements on one side.
    Plains(Side, u32),
}

/// One node of the shared path chain: a chunk plus cached aggregates over the
/// whole prefix ending at (and including) this chunk.
#[derive(Debug)]
pub(crate) struct PathNode<D> {
    pub(crate) parent: Option<Arc<PathNode<D>>>,
    pub(crate) seg: Seg<D>,
    /// Total logical element count of the path ending at this chunk.
    pub(crate) depth: u32,
    /// Total disambiguator count of the path ending at this chunk.
    pub(crate) dis_count: u32,
    /// Polynomial hash of the `(side, has-dis)` sequence of the whole path.
    /// Purely structural (independent of disambiguator *values*) so that it
    /// can be maintained without trait bounds on `D`; used only as a
    /// fast-reject in equality checks, never as a proof of equality.
    pub(crate) shape: u64,
}

impl<D> PathNode<D> {
    fn seg_len(&self) -> u32 {
        match self.seg {
            Seg::Mini(..) => 1,
            Seg::Plains(_, n) => n,
        }
    }
}

/// Mixing codes for the four `(side, has-dis)` element shapes. Any four
/// distinct odd constants work; the polynomial in [`DIGEST_BASE`] does the
/// mixing.
const fn elem_code(side: Side, has_dis: bool) -> u64 {
    match (side, has_dis) {
        (Side::Left, false) => 0x9E37_79B9_7F4A_7C15,
        (Side::Right, false) => 0xC2B2_AE3D_27D4_EB4F,
        (Side::Left, true) => 0x1656_67B1_9E37_79F9,
        (Side::Right, true) => 0x27D4_EB2F_1656_67C5,
    }
}

/// `DIGEST_BASE^exp` in wrapping arithmetic (square-and-multiply).
fn shape_pow(mut exp: u64) -> u64 {
    let mut base = DIGEST_BASE;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        exp >>= 1;
    }
    acc
}

/// `1 + B + B^2 + … + B^(k-1)` in wrapping arithmetic, O(log k) via the
/// recurrences `S(2m) = S(m)·(B^m + 1)` and `S(2m+1) = S(2m)·B + 1`.
fn shape_geom(k: u64) -> u64 {
    if k == 0 {
        return 0;
    }
    if k == 1 {
        return 1;
    }
    let half = shape_geom(k / 2);
    let even = half.wrapping_mul(shape_pow(k / 2).wrapping_add(1));
    if k % 2 == 0 {
        even
    } else {
        even.wrapping_mul(DIGEST_BASE).wrapping_add(1)
    }
}

fn parent_stats<D>(parent: &Option<Arc<PathNode<D>>>) -> (u32, u32, u64) {
    match parent {
        None => (0, 0, 0),
        Some(p) => (p.depth, p.dis_count, p.shape),
    }
}

/// A position identifier: a path in the extended binary tree.
///
/// The empty path identifies the (plain slot of the) root major node.
/// Internally the path is a persistent chain of run-length-encoded chunks
/// (see the module documentation): clones are O(1) and derived identifiers
/// share their prefix with the identifier they were derived from.
pub struct PosId<D> {
    node: Option<Arc<PathNode<D>>>,
}

impl<D> Clone for PosId<D> {
    fn clone(&self) -> Self {
        PosId {
            node: self.node.clone(),
        }
    }
}

impl<D> Default for PosId<D> {
    fn default() -> Self {
        PosId { node: None }
    }
}

/// Chunk chains at or below this length are compared without touching the
/// heap; the overwhelming majority of identifiers fit (sequential typing
/// stays at a handful of chunks regardless of depth).
const INLINE_CHUNKS: usize = 16;

/// A root-first view of a chunk chain with inline storage for shallow chains,
/// so building one on a comparison path costs no allocation in the common
/// case.
struct ChunkList<'a, D> {
    inline: [Option<&'a PathNode<D>>; INLINE_CHUNKS],
    len: usize,
    spill: Vec<&'a PathNode<D>>,
}

impl<'a, D> ChunkList<'a, D> {
    fn of(id: &'a PosId<D>) -> Self {
        let count = id.chunk_count();
        if count > INLINE_CHUNKS {
            let mut spill = Vec::with_capacity(count);
            let mut cur = id.node.as_deref();
            while let Some(n) = cur {
                spill.push(n);
                cur = n.parent.as_deref();
            }
            spill.reverse();
            ChunkList {
                inline: [None; INLINE_CHUNKS],
                len: count,
                spill,
            }
        } else {
            let mut inline = [None; INLINE_CHUNKS];
            let mut i = count;
            let mut cur = id.node.as_deref();
            while let Some(n) = cur {
                i -= 1;
                inline[i] = Some(n);
                cur = n.parent.as_deref();
            }
            ChunkList {
                inline,
                len: count,
                spill: Vec::new(),
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> Option<&'a PathNode<D>> {
        if i >= self.len {
            return None;
        }
        if self.spill.is_empty() {
            self.inline[i]
        } else {
            Some(self.spill[i])
        }
    }
}

/// A borrowed cursor over the logical elements of a chunk list.
struct Cursor<'a, D> {
    chunks: &'a ChunkList<'a, D>,
    chunk: usize,
    off: u32,
}

impl<D> Clone for Cursor<'_, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<D> Copy for Cursor<'_, D> {}

impl<'a, D> Cursor<'a, D> {
    fn start(chunks: &'a ChunkList<'a, D>, chunk: usize) -> Self {
        Cursor {
            chunks,
            chunk,
            off: 0,
        }
    }

    /// The element under the cursor, as `(side, disambiguator)`.
    fn get(&self) -> Option<(Side, Option<&'a D>)> {
        let n = self.chunks.get(self.chunk)?;
        Some(match &n.seg {
            Seg::Mini(side, d) => (*side, Some(d)),
            Seg::Plains(side, _) => (*side, None),
        })
    }

    fn advance(&mut self) {
        if let Some(n) = self.chunks.get(self.chunk) {
            self.off += 1;
            if self.off >= n.seg_len() {
                self.chunk += 1;
                self.off = 0;
            }
        }
    }

    /// The element just past the cursor, without moving it.
    fn peek_next(mut self) -> Option<(Side, Option<&'a D>)> {
        self.advance();
        self.get()
    }

    /// When the cursor sits inside a `Plains` chunk, its side and the number
    /// of elements remaining in that chunk (always ≥ 1).
    fn plains_rem(&self) -> Option<(Side, u32)> {
        let n = self.chunks.get(self.chunk)?;
        match n.seg {
            Seg::Plains(side, k) => Some((side, k - self.off)),
            Seg::Mini(..) => None,
        }
    }

    /// Advances by `k` elements, which must not exceed the remainder of the
    /// current chunk.
    fn advance_by(&mut self, k: u32) {
        if let Some(n) = self.chunks.get(self.chunk) {
            self.off += k;
            if self.off >= n.seg_len() {
                self.chunk += 1;
                self.off = 0;
            }
        }
    }
}

/// Region of the shared major node an identifier falls in, given a cursor
/// parked on an element known to be disambiguator-free.
fn region_after<D>(cursor: Cursor<'_, D>) -> Region {
    match cursor.peek_next() {
        None => Region::PlainSlot,
        Some((Side::Left, _)) => Region::LeftSubtree,
        Some(_) => Region::RightSubtree,
    }
}

impl<D> PosId<D> {
    /// The identifier of the root position (empty path).
    pub const fn root() -> Self {
        PosId { node: None }
    }

    /// Builds an identifier from its elements.
    pub fn from_elems(elems: Vec<PathElem<D>>) -> Self {
        let mut id = PosId::root();
        for e in elems {
            id = id.child(e);
        }
        id
    }

    /// The path elements, materialised into an owned vector. Prefer the O(1)
    /// accessors ([`Self::depth`], [`Self::last`], [`Self::dis_count`], …)
    /// on hot paths; this walks and clones the whole logical path.
    pub fn elems(&self) -> Vec<PathElem<D>>
    where
        D: Clone,
    {
        let mut out = Vec::with_capacity(self.depth());
        for n in self.chunks() {
            match &n.seg {
                Seg::Mini(side, d) => out.push(PathElem::mini(*side, d.clone())),
                Seg::Plains(side, k) => {
                    out.extend(std::iter::repeat_n(PathElem::plain(*side), *k as usize))
                }
            }
        }
        out
    }

    /// Number of path elements (= depth of the identified node, = number of
    /// bits of the path).
    pub fn depth(&self) -> usize {
        self.node.as_deref().map_or(0, |n| n.depth as usize)
    }

    /// `true` for the root identifier.
    pub fn is_root(&self) -> bool {
        self.node.is_none()
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<PathElem<D>>
    where
        D: Clone,
    {
        self.node.as_deref().map(|n| match &n.seg {
            Seg::Mini(side, d) => PathElem::mini(*side, d.clone()),
            Seg::Plains(side, _) => PathElem::plain(*side),
        })
    }

    /// The branch bit of the last element, if any.
    pub fn last_side(&self) -> Option<Side> {
        self.node.as_deref().map(|n| match n.seg {
            Seg::Mini(side, _) => side,
            Seg::Plains(side, _) => side,
        })
    }

    /// The disambiguator of the last element, if the identifier ends in a
    /// mini-node selection.
    pub fn last_dis(&self) -> Option<&D> {
        match self.node.as_deref() {
            Some(PathNode {
                seg: Seg::Mini(_, d),
                ..
            }) => Some(d),
            _ => None,
        }
    }

    /// The sequence of branch bits, ignoring disambiguators.
    pub fn bits(&self) -> impl Iterator<Item = Side> + '_ {
        self.chunks().into_iter().flat_map(|n| {
            let (side, len) = match n.seg {
                Seg::Mini(side, _) => (side, 1),
                Seg::Plains(side, k) => (side, k as usize),
            };
            std::iter::repeat_n(side, len)
        })
    }

    /// The branch bits as a vector of 0/1 values.
    pub fn bit_vec(&self) -> Vec<u8> {
        self.bits().map(Side::bit).collect()
    }

    /// Number of disambiguators carried by this identifier.
    pub fn dis_count(&self) -> usize {
        self.node.as_deref().map_or(0, |n| n.dis_count as usize)
    }

    /// Number of disambiguators carried by *interior* elements (everything
    /// but the last). Zero for the sequential-typing spine identifiers, which
    /// lets hot paths skip ghost-ancestor bookkeeping entirely.
    pub fn interior_dis_count(&self) -> usize {
        match self.node.as_deref() {
            None => 0,
            Some(n) => (n.dis_count - matches!(n.seg, Seg::Mini(..)) as u32) as usize,
        }
    }

    /// The identifier of the parent node: the same path with the final
    /// element removed (paper §3.1: `u / v` iff `id(v) = id(u)·p` or
    /// `id(v) = id(u)·(p:d)`). Returns `None` for the root. O(1).
    pub fn parent(&self) -> Option<PosId<D>> {
        let node = self.node.as_deref()?;
        Some(match &node.seg {
            Seg::Mini(..) | Seg::Plains(_, 1) => PosId {
                node: node.parent.clone(),
            },
            Seg::Plains(side, n) => {
                let (pd, pdc, pshape) = parent_stats(&node.parent);
                let k = u64::from(n - 1);
                let code = elem_code(*side, false);
                PosId {
                    node: Some(Arc::new(PathNode {
                        parent: node.parent.clone(),
                        seg: Seg::Plains(*side, n - 1),
                        depth: pd + (n - 1),
                        dis_count: pdc,
                        shape: pshape
                            .wrapping_mul(shape_pow(k))
                            .wrapping_add(code.wrapping_mul(shape_geom(k))),
                    })),
                }
            }
        })
    }

    /// Extends this identifier with one more element, producing a child
    /// identifier. O(1): the new identifier shares this one's path.
    pub fn child(&self, elem: PathElem<D>) -> PosId<D> {
        match elem.dis {
            Some(d) => self.child_mini(elem.side, d),
            None => self.extend_plains(elem.side, 1),
        }
    }

    /// Extends with one disambiguated element (`child` without the
    /// `PathElem` wrapper). O(1).
    pub fn child_mini(&self, side: Side, dis: D) -> PosId<D> {
        let (depth, dc, shape) = parent_stats(&self.node);
        PosId {
            node: Some(Arc::new(PathNode {
                parent: self.node.clone(),
                seg: Seg::Mini(side, dis),
                depth: depth + 1,
                dis_count: dc + 1,
                shape: shape
                    .wrapping_mul(DIGEST_BASE)
                    .wrapping_add(elem_code(side, true)),
            })),
        }
    }

    /// Extends with `count` consecutive plain elements on `side`, in O(log
    /// count): the run becomes (or merges into) a single chunk.
    pub fn extend_plains(&self, side: Side, count: usize) -> PosId<D> {
        if count == 0 {
            return self.clone();
        }
        let count = u32::try_from(count).expect("path deeper than u32::MAX");
        let k = u64::from(count);
        let code = elem_code(side, false);
        let added = code.wrapping_mul(shape_geom(k));
        match self.node.as_deref() {
            // Canonical form: merge into an existing same-side plains chunk.
            Some(PathNode {
                parent,
                seg: Seg::Plains(s, n),
                depth,
                dis_count,
                shape,
            }) if *s == side => PosId {
                node: Some(Arc::new(PathNode {
                    parent: parent.clone(),
                    seg: Seg::Plains(side, n + count),
                    depth: depth + count,
                    dis_count: *dis_count,
                    shape: shape.wrapping_mul(shape_pow(k)).wrapping_add(added),
                })),
            },
            _ => {
                let (depth, dc, shape) = parent_stats(&self.node);
                PosId {
                    node: Some(Arc::new(PathNode {
                        parent: self.node.clone(),
                        seg: Seg::Plains(side, count),
                        depth: depth + count,
                        dis_count: dc,
                        shape: shape.wrapping_mul(shape_pow(k)).wrapping_add(added),
                    })),
                }
            }
        }
    }

    /// The chunk chain, root-most chunk first.
    pub(crate) fn chunks(&self) -> Vec<&PathNode<D>> {
        let mut out = Vec::new();
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            out.push(n);
            cur = n.parent.as_deref();
        }
        out.reverse();
        out
    }

    /// Number of chunk nodes backing this identifier (a proxy for its heap
    /// footprint: deep sequential-typing identifiers stay at a handful of
    /// chunks regardless of depth).
    pub fn chunk_count(&self) -> usize {
        let mut n = 0;
        let mut cur = self.node.as_deref();
        while let Some(node) = cur {
            n += 1;
            cur = node.parent.as_deref();
        }
        n
    }

    /// Approximate heap footprint: one `PathNode` per chunk. Shared chunks
    /// are attributed to every identifier that references them.
    pub fn heap_bytes(&self) -> usize {
        self.chunk_count() * std::mem::size_of::<PathNode<D>>()
    }

    /// Visits the logical elements from index `start` on, as
    /// `(side, disambiguator)` pairs, without materialising them. This is the
    /// allocation-free alternative to [`PosId::elems`] for serialisation and
    /// hashing paths.
    pub fn visit_elems_from<F: FnMut(Side, Option<&D>)>(&self, start: usize, mut f: F) {
        let chunks = self.chunks();
        let mut idx = 0usize;
        for n in &chunks {
            let len = n.seg_len() as usize;
            if idx + len <= start {
                idx += len;
                continue;
            }
            match &n.seg {
                Seg::Mini(side, d) => f(*side, Some(d)),
                Seg::Plains(side, _) => {
                    for _ in idx.max(start)..idx + len {
                        f(*side, None);
                    }
                }
            }
            idx += len;
        }
    }

    /// The element at index `idx`, as `(side, disambiguator)`.
    pub(crate) fn elem_at(&self, idx: usize) -> Option<(Side, Option<&D>)> {
        let mut cur = self.node.as_deref()?;
        if idx >= cur.depth as usize {
            return None;
        }
        loop {
            let start = (cur.depth - cur.seg_len()) as usize;
            if idx >= start {
                return Some(match &cur.seg {
                    Seg::Mini(side, d) => (*side, Some(d)),
                    Seg::Plains(side, _) => (*side, None),
                });
            }
            cur = cur.parent.as_deref()?;
        }
    }

    /// The prefix of this identifier keeping the first `len` elements, in
    /// O(chunks): the result shares every wholly-kept chunk.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the identifier's depth.
    pub fn prefix(&self, len: usize) -> PosId<D> {
        assert!(len <= self.depth(), "prefix past the end of the path");
        let len = len as u32;
        let mut cur = &self.node;
        loop {
            let node = match cur.as_deref() {
                None => return PosId::root(),
                Some(n) => n,
            };
            if node.depth == len {
                return PosId { node: cur.clone() };
            }
            let start = node.depth - node.seg_len();
            if start >= len {
                cur = &node.parent;
                continue;
            }
            // The prefix boundary falls inside this (necessarily Plains)
            // chunk: truncate it.
            let side = match node.seg {
                Seg::Plains(side, _) => side,
                Seg::Mini(..) => unreachable!("mini chunks have length 1"),
            };
            let keep = len - start;
            let (pd, pdc, pshape) = parent_stats(&node.parent);
            let k = u64::from(keep);
            let code = elem_code(side, false);
            return PosId {
                node: Some(Arc::new(PathNode {
                    parent: node.parent.clone(),
                    seg: Seg::Plains(side, keep),
                    depth: pd + keep,
                    dis_count: pdc,
                    shape: pshape
                        .wrapping_mul(shape_pow(k))
                        .wrapping_add(code.wrapping_mul(shape_geom(k))),
                })),
            };
        }
    }

    /// Length of the longest common element-wise prefix of two identifiers,
    /// in O(divergent chunks): pointer-equal shared chunks are skipped.
    pub fn common_prefix_len(&self, other: &PosId<D>) -> usize
    where
        D: PartialEq,
    {
        let ac = ChunkList::of(self);
        let bc = ChunkList::of(other);
        let mut skip = 0;
        let mut shared = 0usize;
        while skip < ac.len() && skip < bc.len() {
            let (Some(x), Some(y)) = (ac.get(skip), bc.get(skip)) else {
                break;
            };
            if !std::ptr::eq(x, y) {
                break;
            }
            shared = x.depth as usize;
            skip += 1;
        }
        let mut a = Cursor::start(&ac, skip);
        let mut b = Cursor::start(&bc, skip);
        loop {
            // Same-side plain stretches match wholesale: skip them chunk-wise
            // so the scan is O(divergent chunks), not O(divergent elements).
            if let (Some((sa, ra)), Some((sb, rb))) = (a.plains_rem(), b.plains_rem()) {
                if sa == sb {
                    let k = ra.min(rb);
                    shared += k as usize;
                    a.advance_by(k);
                    b.advance_by(k);
                    continue;
                }
            }
            let (Some((sa, da)), Some((sb, db))) = (a.get(), b.get()) else {
                break;
            };
            if sa != sb || da != db {
                break;
            }
            shared += 1;
            a.advance();
            b.advance();
        }
        shared
    }

    /// Identifiers of every strict prefix ending in a disambiguated element,
    /// shallowest first. These are exactly the mini-node ancestors that need
    /// ghost bookkeeping; the list is empty for spine identifiers (O(1)).
    pub(crate) fn mini_prefixes(&self) -> Vec<PosId<D>> {
        let mut out = Vec::new();
        let mut cur = self.node.as_ref().and_then(|n| n.parent.as_ref());
        while let Some(arc) = cur {
            if matches!(arc.seg, Seg::Mini(..)) {
                out.push(PosId {
                    node: Some(arc.clone()),
                });
            }
            cur = arc.parent.as_ref();
        }
        out.reverse();
        out
    }

    /// Size of this identifier in bits: one bit per element plus the size of
    /// each disambiguator it carries. This is the quantity reported in the
    /// "PosID" columns of Table 1 and Table 4 of the paper.
    pub fn size_bits(&self) -> usize
    where
        D: Disambiguator,
    {
        self.depth() + self.dis_count() * D::ACCOUNTED_BYTES * 8
    }

    /// Size of this identifier in bytes (rounded up), the unit used when the
    /// identifier is shipped over the network.
    pub fn size_bytes(&self) -> usize
    where
        D: Disambiguator,
    {
        self.size_bits().div_ceil(8)
    }

    /// `true` if `self`'s elements are a strict prefix of `other`'s elements
    /// (the paper's ancestor relation `u /+ v`, applied element-wise).
    pub fn is_strict_prefix_of(&self, other: &PosId<D>) -> bool
    where
        D: PartialEq,
    {
        self.depth() < other.depth() && other.prefix(self.depth()) == *self
    }

    /// The *compatible-ancestor* relation used by the allocation algorithm
    /// (Algorithm 1): `self` is an ancestor of `other` if `other`'s path
    /// passes through `self`'s position — either through `self`'s mini-node
    /// explicitly, or through the plain slot of `self`'s major node.
    ///
    /// This is the reading under which, in the paper's running example, atom
    /// `c` (id `[(1:dC)]`) is an ancestor of atom `d` (id `[1·(0:dD)]`): the
    /// bits of `c` are a prefix of the bits of `d`, and `d` does not descend
    /// through a *different* mini-node at `c`'s position.
    pub fn is_ancestor_of(&self, other: &PosId<D>) -> bool
    where
        D: PartialEq,
    {
        let n = self.depth();
        if n >= other.depth() {
            return false;
        }
        if n == 0 {
            return true;
        }
        // All but the last element must match exactly (same branch and same
        // mini-node selection), because interior disambiguators denote a
        // genuinely different subtree.
        if self.prefix(n - 1) != other.prefix(n - 1) {
            return false;
        }
        // The element of `other` landing on `self`'s position must use the
        // same branch and either the same mini-node or the plain slot.
        let (my_side, my_dis) = self.elem_at(n - 1).expect("n - 1 < depth");
        let (their_side, their_dis) = other.elem_at(n - 1).expect("n - 1 < other depth");
        if my_side != their_side {
            return false;
        }
        match (my_dis, their_dis) {
            (_, None) => true,
            (Some(a), Some(b)) => a == b,
            (None, Some(_)) => false,
        }
    }

    /// `true` if `self` and `other` are mini-siblings: mini-nodes of the same
    /// major node (same branch bits, both carrying a final disambiguator,
    /// with identical interior elements).
    pub fn is_mini_sibling_of(&self, other: &PosId<D>) -> bool
    where
        D: PartialEq,
    {
        let n = self.depth();
        if n != other.depth() || n == 0 {
            return false;
        }
        let (a, b) = match (self.node.as_deref(), other.node.as_deref()) {
            (Some(a), Some(b)) => (a, b),
            _ => return false,
        };
        match (&a.seg, &b.seg) {
            (Seg::Mini(sa, da), Seg::Mini(sb, db)) if sa == sb && da != db => {
                self.prefix(n - 1) == other.prefix(n - 1)
            }
            _ => false,
        }
    }

    /// A copy of this identifier with the final disambiguator removed (the
    /// `c1 … pn` prefix used by Algorithm 1 when allocating a child of the
    /// *major* node rather than of the mini-node). O(1).
    pub fn major_path(&self) -> PosId<D> {
        match self.node.as_deref() {
            None => PosId::root(),
            Some(n) => match &n.seg {
                Seg::Plains(..) => self.clone(),
                Seg::Mini(side, _) => PosId {
                    node: n.parent.clone(),
                }
                .extend_plains(*side, 1),
            },
        }
    }

    /// Human-readable rendering, used in error messages.
    pub fn repr(&self) -> PosIdRepr
    where
        D: fmt::Debug,
    {
        PosIdRepr(format!("{self:?}"))
    }

    /// The chunk chain as owned `Arc`s, root-most chunk first. Used by the
    /// interning arena, which relinks chains onto canonical nodes.
    pub(crate) fn chunk_arcs(&self) -> Vec<Arc<PathNode<D>>> {
        let mut out = Vec::new();
        let mut cur = self.node.clone();
        while let Some(arc) = cur {
            cur = arc.parent.clone();
            out.push(arc);
        }
        out.reverse();
        out
    }

    /// The tip chunk node, for the interning arena's sharing assertions.
    #[cfg(test)]
    pub(crate) fn tip(&self) -> &Option<Arc<PathNode<D>>> {
        &self.node
    }

    /// Rewraps an arena-owned chunk chain as an identifier.
    pub(crate) fn from_node(node: Option<Arc<PathNode<D>>>) -> PosId<D> {
        PosId { node }
    }
}

impl<D: PartialEq> PartialEq for PosId<D> {
    fn eq(&self, other: &Self) -> bool {
        let (mut a, mut b) = (&self.node, &other.node);
        loop {
            match (a, b) {
                (None, None) => return true,
                (Some(x), Some(y)) => {
                    if Arc::ptr_eq(x, y) {
                        return true;
                    }
                    // The cached aggregates reject unequal paths in O(1);
                    // they never *confirm* equality — the chunk walk does.
                    if x.depth != y.depth || x.dis_count != y.dis_count || x.shape != y.shape {
                        return false;
                    }
                    if x.seg != y.seg {
                        return false;
                    }
                    a = &x.parent;
                    b = &y.parent;
                }
                _ => return false,
            }
        }
    }
}

impl<D: Eq> Eq for PosId<D> {}

impl<D: Hash> Hash for PosId<D> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.node.as_deref().map_or(0, |n| n.shape));
        state.write_usize(self.depth());
        // Feed the disambiguators (tip-most first) so that mini-siblings,
        // which share the structural shape, still hash apart.
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            if let Seg::Mini(_, d) = &n.seg {
                d.hash(state);
            }
            cur = n.parent.as_deref();
        }
    }
}

impl<D: Disambiguator> PosId<D> {
    /// Compares two identifiers according to the infix-walk order of §3.1.
    ///
    /// See the module documentation for how the plain-versus-mini case is
    /// resolved. Pointer-equal shared chunks are skipped, so comparing two
    /// identifiers derived from a common prefix walks only the divergent
    /// suffix.
    fn infix_cmp(&self, other: &PosId<D>) -> Ordering {
        match (&self.node, &other.node) {
            (None, None) => return Ordering::Equal,
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => return Ordering::Equal,
            _ => {}
        }
        let ac = ChunkList::of(self);
        let bc = ChunkList::of(other);
        let mut skip = 0;
        while skip < ac.len() && skip < bc.len() {
            let (Some(x), Some(y)) = (ac.get(skip), bc.get(skip)) else {
                break;
            };
            if !std::ptr::eq(x, y) {
                break;
            }
            skip += 1;
        }
        let mut a = Cursor::start(&ac, skip);
        let mut b = Cursor::start(&bc, skip);
        loop {
            // Same-side plain stretches compare equal wholesale: skip them
            // chunk-wise so the walk is O(divergent chunks) even when the
            // shared prefix is not pointer-shared.
            if let (Some((sa, ra)), Some((sb, rb))) = (a.plains_rem(), b.plains_rem()) {
                if sa == sb {
                    let k = ra.min(rb);
                    a.advance_by(k);
                    b.advance_by(k);
                    continue;
                }
            }
            match (a.get(), b.get()) {
                (None, None) => return Ordering::Equal,
                // One is an element-wise prefix of the other: the longer one
                // sorts according to the branch it takes next.
                (None, Some((side, _))) => {
                    return if side == Side::Right {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    };
                }
                (Some((side, _)), None) => {
                    return if side == Side::Right {
                        Ordering::Greater
                    } else {
                        Ordering::Less
                    };
                }
                (Some((sa, da)), Some((sb, db))) => {
                    if sa != sb {
                        return sa.cmp(&sb);
                    }
                    match (da, db) {
                        (None, None) => {}
                        (Some(x), Some(y)) => match x.cmp(y) {
                            Ordering::Equal => {}
                            o => return o,
                        },
                        // Same branch bit, one path goes through the major
                        // node's plain namespace, the other through a
                        // mini-node: order by region (left subtree < plain
                        // slot < minis < right subtree).
                        (None, Some(_)) => return region_after(a).cmp(&Region::Minis),
                        (Some(_), None) => return Region::Minis.cmp(&region_after(b)),
                    }
                    a.advance();
                    b.advance();
                }
            }
        }
    }
}

impl<D: Disambiguator> PartialOrd for PosId<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<D: Disambiguator> Ord for PosId<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.infix_cmp(other)
    }
}

impl<D: fmt::Debug> fmt::Debug for PosId<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for n in self.chunks() {
            match &n.seg {
                Seg::Mini(side, d) => write!(f, "({}:{:?})", side.bit(), d)?,
                Seg::Plains(side, k) => {
                    for _ in 0..*k {
                        write!(f, "{}", side.bit())?;
                    }
                }
            }
        }
        write!(f, "]")
    }
}

impl<D: fmt::Debug> fmt::Display for PosId<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

// The wire image of a `PosId` is its element sequence, exactly as the old
// `struct PosId { elems: Vec<PathElem<D>> }` derive produced it, so storage
// snapshots and JSON WALs written before the chunked representation decode
// unchanged (and vice versa).
impl<D: Serialize> Serialize for PosId<D> {
    fn to_value(&self) -> Value {
        let mut arr = Vec::with_capacity(self.depth());
        for n in self.chunks() {
            match &n.seg {
                Seg::Mini(side, d) => arr.push(elem_value(*side, Some(d))),
                Seg::Plains(side, k) => {
                    for _ in 0..*k {
                        arr.push(elem_value::<D>(*side, None));
                    }
                }
            }
        }
        Value::Map(vec![(String::from("elems"), Value::Array(arr))])
    }
}

/// The value tree the `PathElem` derive produces, built from borrowed parts.
fn elem_value<D: Serialize>(side: Side, dis: Option<&D>) -> Value {
    Value::Map(vec![
        (String::from("side"), side.to_value()),
        (
            String::from("dis"),
            match dis {
                None => Value::Null,
                Some(d) => d.to_value(),
            },
        ),
    ])
}

impl<D: Deserialize> Deserialize for PosId<D> {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let map = value
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected map for `PosId`"))?;
        let elems: Vec<PathElem<D>> =
            Deserialize::from_value(serde::value::get_field(map, "elems"))?;
        Ok(PosId::from_elems(elems))
    }
}

/// A pre-rendered position identifier, used in error values so that
/// [`Error`](crate::Error) does not need to be generic over the
/// disambiguator type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PosIdRepr(pub String);

impl fmt::Display for PosIdRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::{Sdis, Udis};
    use crate::site::SiteId;

    fn s(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    /// Shorthand to build a `PosId<Sdis>` from a compact description:
    /// `p(&[(0, None), (1, Some(3))])` = `[0·(1:s3)]`.
    fn p(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(s),
                })
                .collect(),
        )
    }

    #[test]
    fn root_is_empty() {
        let r = PosId::<Sdis>::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.parent(), None);
    }

    #[test]
    fn parent_strips_last_element() {
        let id = p(&[(1, None), (0, Some(4))]);
        assert_eq!(id.parent().unwrap(), p(&[(1, None)]));
    }

    #[test]
    fn size_accounting() {
        // Two elements, one disambiguator: 2 bits + 48 bits (6-byte SDIS).
        let id = p(&[(1, None), (0, Some(4))]);
        assert_eq!(id.size_bits(), 2 + 48);
        assert_eq!(id.size_bytes(), (2usize + 48).div_ceil(8));

        // UDIS carries 10 bytes per disambiguator.
        let u: PosId<Udis> = PosId::from_elems(vec![PathElem::mini(
            Side::Left,
            Udis::new(1, SiteId::from_u64(1)),
        )]);
        assert_eq!(u.size_bits(), 1 + 80);
    }

    #[test]
    fn plain_bit_order() {
        // Figure 1 layout: a[00] < b[0] < c[] < d[10] < e[1] < f[11].
        let a = p(&[(0, None), (0, None)]);
        let b = p(&[(0, None)]);
        let c = p(&[]);
        let d = p(&[(1, None), (0, None)]);
        let e = p(&[(1, None)]);
        let f = p(&[(1, None), (1, None)]);
        let mut v = vec![
            f.clone(),
            d.clone(),
            b.clone(),
            e.clone(),
            c.clone(),
            a.clone(),
        ];
        v.sort();
        assert_eq!(v, vec![a, b, c, d, e, f]);
    }

    #[test]
    fn paper_example_order_after_concurrent_inserts() {
        // Figure 2–4 of the paper. In the Figure 1/2 tree, `c` is the root
        // atom and `d` hangs below it at bit path "10"; ids as derived in
        // §3.2:
        //   c  = []                  (the root, ancestor of d)
        //   d  = [1·(0:dD)]
        //   W  = [1·0·(0:dW)]        concurrent insert between c and d
        //   Y  = [1·0·(0:dY)]        concurrent insert between c and d
        //   X  = [1·0·(0:dW)·(1:dX)] inserted between W and Y
        //   Z  = [1·0·0·(1:dZ)]      inserted between Y and d
        // With dW < dY the document must read … c W X Y Z d …
        let c = p(&[]);
        let d = p(&[(1, None), (0, Some(4))]);
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let y = p(&[(1, None), (0, None), (0, Some(2))]);
        let x = p(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]);
        let z = p(&[(1, None), (0, None), (0, None), (1, Some(6))]);

        let expected = vec![
            c.clone(),
            w.clone(),
            x.clone(),
            y.clone(),
            z.clone(),
            d.clone(),
        ];
        let mut got = vec![d, z, x, w, y, c];
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn prefix_rule_orders_by_next_branch() {
        let base = p(&[(1, None), (0, Some(4))]);
        let left_child = p(&[(1, None), (0, None), (0, Some(9))]);
        let right_child = p(&[(1, None), (0, None), (1, Some(9))]);
        assert!(left_child < base);
        assert!(base < right_child);
    }

    #[test]
    fn plain_slot_sorts_before_minis_and_after_left_subtree() {
        // Same major node (bit path "0"): its plain slot, a mini-node, its
        // plain left subtree and its plain right subtree.
        let plain_slot = p(&[(0, None)]);
        let mini = p(&[(0, Some(2))]);
        let left_sub = p(&[(0, None), (0, Some(1))]);
        let right_sub = p(&[(0, None), (1, Some(1))]);
        assert!(left_sub < plain_slot);
        assert!(plain_slot < mini);
        assert!(mini < right_sub);
        assert!(left_sub < mini);
        assert!(plain_slot < right_sub);
    }

    #[test]
    fn mini_subtrees_sort_with_their_mini() {
        // Minis d1 < d2 at the same major node; d1's right subtree must sort
        // after d1 but before d2's left subtree.
        let d1 = p(&[(0, Some(1))]);
        let d1_right = p(&[(0, Some(1)), (1, Some(7))]);
        let d2_left = p(&[(0, Some(2)), (0, Some(7))]);
        let d2 = p(&[(0, Some(2))]);
        assert!(d1 < d1_right);
        assert!(d1_right < d2_left);
        assert!(d2_left < d2);
    }

    #[test]
    fn ancestor_relation_follows_paper_example() {
        // c = [(1:dC)] is an ancestor of d = [1·(0:dD)] (the example in §3.2
        // relies on this), even though the element forms differ.
        let c = p(&[(1, Some(3))]);
        let d = p(&[(1, None), (0, Some(4))]);
        assert!(c.is_ancestor_of(&d));
        assert!(!d.is_ancestor_of(&c));

        // But a path descending through a *different* mini-node is not a
        // descendant: W is not an ancestor of a node below Y.
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let below_y = p(&[(1, None), (0, None), (0, Some(2)), (0, Some(9))]);
        assert!(!w.is_ancestor_of(&below_y));
        // ... while Y itself is.
        let y = p(&[(1, None), (0, None), (0, Some(2))]);
        assert!(y.is_ancestor_of(&below_y));
    }

    #[test]
    fn root_is_ancestor_of_everything_but_itself() {
        let root = PosId::<Sdis>::root();
        let other = p(&[(0, Some(1))]);
        assert!(root.is_ancestor_of(&other));
        assert!(!root.is_ancestor_of(&PosId::root()));
    }

    #[test]
    fn mini_siblings() {
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let y = p(&[(1, None), (0, None), (0, Some(2))]);
        let elsewhere = p(&[(1, None), (1, None), (0, Some(2))]);
        assert!(w.is_mini_sibling_of(&y));
        assert!(y.is_mini_sibling_of(&w));
        assert!(!w.is_mini_sibling_of(&w.clone()));
        assert!(!w.is_mini_sibling_of(&elsewhere));
    }

    #[test]
    fn major_path_strips_final_disambiguator_only() {
        let x = p(&[(1, None), (0, Some(1)), (1, Some(5))]);
        assert_eq!(x.major_path(), p(&[(1, None), (0, Some(1)), (1, None)]));
    }

    #[test]
    fn debug_rendering() {
        let x = p(&[(1, None), (0, Some(1))]);
        assert_eq!(format!("{x:?}"), "[1(0:s1)]");
        assert_eq!(x.repr().to_string(), "[1(0:s1)]");
    }

    #[test]
    fn ordering_is_consistent_with_equality() {
        let a = p(&[(1, None), (0, Some(1))]);
        let b = p(&[(1, None), (0, Some(1))]);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a, b);
    }

    #[test]
    fn derived_and_rebuilt_ids_are_equal_and_share_nothing() {
        // The same logical path reached two ways: by child extension from a
        // shared base, and rebuilt from scratch via `from_elems`. They must
        // compare equal (and hash equal) despite disjoint chunk chains.
        let base = p(&[(1, None), (0, Some(2))]);
        let derived = base
            .child(PathElem::plain(Side::Right))
            .child(PathElem::plain(Side::Right))
            .child(PathElem::mini(Side::Left, s(3)));
        let rebuilt = p(&[(1, None), (0, Some(2)), (1, None), (1, None), (0, Some(3))]);
        assert_eq!(derived, rebuilt);
        assert_eq!(derived.cmp(&rebuilt), Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        let h = |id: &PosId<Sdis>| {
            let mut st = DefaultHasher::new();
            id.hash(&mut st);
            st.finish()
        };
        assert_eq!(h(&derived), h(&rebuilt));
    }

    #[test]
    fn deep_spine_id_stays_flat_in_chunks() {
        // A sequential-typing spine identifier: thousands of plain elements
        // and one trailing mini must cost O(1) chunks, and extending it by
        // one more level must not copy the prefix.
        let deep = PosId::<Sdis>::root()
            .extend_plains(Side::Right, 10_000)
            .child(PathElem::mini(Side::Right, s(1)));
        assert_eq!(deep.depth(), 10_001);
        assert_eq!(deep.chunk_count(), 2);
        assert_eq!(deep.dis_count(), 1);
        assert_eq!(deep.interior_dis_count(), 0);
        let deeper = deep.major_path().child(PathElem::mini(Side::Right, s(1)));
        assert_eq!(deeper.depth(), 10_002);
        assert_eq!(deeper.chunk_count(), 2);
        // Siblings derived from the same anchor compare in O(divergence).
        assert!(deep < deeper);
    }

    #[test]
    fn prefix_and_common_prefix_len() {
        let id = p(&[(1, None), (1, None), (0, Some(2)), (0, None), (1, Some(3))]);
        assert_eq!(id.prefix(0), PosId::root());
        assert_eq!(id.prefix(1), p(&[(1, None)]));
        assert_eq!(id.prefix(3), p(&[(1, None), (1, None), (0, Some(2))]));
        assert_eq!(id.prefix(5), id);
        let other = p(&[(1, None), (1, None), (0, Some(2)), (1, None)]);
        assert_eq!(id.common_prefix_len(&other), 3);
        assert_eq!(id.common_prefix_len(&id.clone()), 5);
        assert_eq!(id.common_prefix_len(&PosId::root()), 0);
    }

    #[test]
    fn mini_prefixes_lists_ghost_ancestors_shallowest_first() {
        let id = p(&[
            (1, None),
            (0, Some(1)),
            (1, Some(5)),
            (0, None),
            (1, Some(7)),
        ]);
        let prefixes = id.mini_prefixes();
        assert_eq!(
            prefixes,
            vec![
                p(&[(1, None), (0, Some(1))]),
                p(&[(1, None), (0, Some(1)), (1, Some(5))]),
            ]
        );
        assert_eq!(id.interior_dis_count(), 2);
        // Spine-shaped ids have no ghost ancestors to visit.
        let spine = p(&[(1, None), (1, None), (1, Some(9))]);
        assert!(spine.mini_prefixes().is_empty());
        assert_eq!(spine.interior_dis_count(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_elem() -> impl Strategy<Value = PathElem<Sdis>> {
            (0u8..2, proptest::option::of(0u64..4)).prop_map(|(bit, dis)| PathElem {
                side: Side::from_bit(bit),
                dis: dis.map(s),
            })
        }

        fn arb_posid() -> impl Strategy<Value = PosId<Sdis>> {
            proptest::collection::vec(arb_elem(), 0..8).prop_map(PosId::from_elems)
        }

        proptest! {
            /// Antisymmetry + totality: exactly one of <, =, > holds, and it
            /// is the mirror of the reverse comparison.
            #[test]
            fn comparison_is_antisymmetric(a in arb_posid(), b in arb_posid()) {
                let ab = a.cmp(&b);
                let ba = b.cmp(&a);
                prop_assert_eq!(ab, ba.reverse());
                if ab == Ordering::Equal {
                    prop_assert_eq!(&a, &b);
                }
            }

            /// Transitivity, checked through sort consistency on triples.
            #[test]
            fn comparison_is_transitive(a in arb_posid(), b in arb_posid(), c in arb_posid()) {
                if a <= b && b <= c {
                    prop_assert!(a <= c, "{:?} <= {:?} <= {:?} but not {:?} <= {:?}", a, b, c, a, c);
                }
                if a >= b && b >= c {
                    prop_assert!(a >= c);
                }
            }

            /// A node sorts after everything in its left subtree and before
            /// everything in its right subtree.
            #[test]
            fn children_sort_around_parent(base in arb_posid(), tail in arb_posid(), d in 0u64..4) {
                let left_first = base.child(PathElem::mini(Side::Left, s(d)));
                let right_first = base.child(PathElem::mini(Side::Right, s(d)));
                // Arbitrary deeper descendants keep the relation.
                let mut deep_left = left_first.clone();
                let mut deep_right = right_first.clone();
                for e in tail.elems() {
                    deep_left = deep_left.child(e.clone());
                    deep_right = deep_right.child(e.clone());
                }
                if base.last().map(|e| e.dis.is_some()).unwrap_or(true) {
                    // `base` names an actual atom slot (mini or root plain slot).
                    prop_assert!(left_first < base);
                    prop_assert!(base < right_first);
                }
                prop_assert!(left_first < right_first);
                prop_assert!(deep_left < deep_right || left_first == right_first);
            }

            /// Sorting is stable under shuffling (i.e. the order is total and
            /// deterministic).
            #[test]
            fn sort_is_deterministic(mut ids in proptest::collection::vec(arb_posid(), 0..12)) {
                let mut once = ids.clone();
                once.sort();
                ids.reverse();
                ids.sort();
                prop_assert_eq!(once, ids);
            }

            /// The chunked representation round-trips through its element
            /// sequence: `from_elems(id.elems())` is the identity, and the
            /// derived accessors agree with the materialised elements.
            #[test]
            fn elems_round_trip(a in arb_posid()) {
                let elems = a.elems();
                let rebuilt = PosId::from_elems(elems.clone());
                prop_assert_eq!(&a, &rebuilt);
                prop_assert_eq!(a.depth(), elems.len());
                prop_assert_eq!(a.dis_count(), elems.iter().filter(|e| e.dis.is_some()).count());
                prop_assert_eq!(a.last(), elems.last().cloned());
                prop_assert_eq!(
                    a.parent(),
                    (!elems.is_empty()).then(|| {
                        PosId::from_elems(elems[..elems.len() - 1].to_vec())
                    })
                );
            }

            /// `prefix` and `common_prefix_len` agree with the element-wise
            /// definitions.
            #[test]
            fn prefix_agrees_with_elementwise(a in arb_posid(), b in arb_posid()) {
                let ae = a.elems();
                let be = b.elems();
                let shared = ae.iter().zip(&be).take_while(|(x, y)| x == y).count();
                prop_assert_eq!(a.common_prefix_len(&b), shared);
                for k in 0..=ae.len() {
                    prop_assert_eq!(a.prefix(k), PosId::from_elems(ae[..k].to_vec()));
                }
            }
        }
    }
}
