//! Position identifiers: paths in the extended binary tree (§3.1).
//!
//! A [`PosId`] is a sequence of [`PathElem`]s. Each element carries one bit
//! (left / right) and, optionally, a disambiguator:
//!
//! * an element **without** a disambiguator refers to the children of the
//!   corresponding *major node* (the common, sequential-editing case);
//! * an element **with** a disambiguator selects a specific *mini-node* of
//!   that major node — either as the final element (the identified atom is
//!   that mini-node) or as an interior element (the path descends through
//!   that mini-node's own subtree, which only happens after inserts between
//!   mini-siblings, Fig. 4 of the paper).
//!
//! # Ordering
//!
//! Identifiers are ordered by an infix walk of the extended tree: a major
//! node's left child comes first, then its disambiguator-free atom slot (only
//! present after a `flatten`), then its mini-nodes in disambiguator order
//! (each mini-node surrounded by its own left and right subtrees), then the
//! major node's right child. [`PosId::cmp`] implements exactly this order.
//!
//! The paper's formal rules (§3.1) compare path elements pairwise; taken
//! literally they do not say how a disambiguator-free element compares with a
//! disambiguated one referring to the same side (e.g. the paper's own example
//! `Y = [1·0·(0:dY)]` versus `Z = [1·0·0·(1:dZ)]`, where `Z` must sort after
//! `Y` because it is the right child of `Y`'s major node). We resolve this —
//! as the example and the infix-walk definition require — by looking at which
//! *region* of the shared major node each identifier falls in:
//! `left subtree < plain atom slot < mini-nodes < right subtree`.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::disambiguator::Disambiguator;

/// One bit of a tree path: descend to the left or to the right child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The `0` branch: everything below it precedes the current node.
    Left = 0,
    /// The `1` branch: everything below it follows the current node.
    Right = 1,
}

impl Side {
    /// Returns the bit value (0 or 1).
    pub const fn bit(self) -> u8 {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    /// Builds a side from a bit value.
    pub const fn from_bit(bit: u8) -> Side {
        if bit == 0 {
            Side::Left
        } else {
            Side::Right
        }
    }

    /// The opposite side.
    pub const fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// One element of a position identifier: a branch bit plus an optional
/// disambiguator.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathElem<D> {
    /// Which child of the current node the path descends to.
    pub side: Side,
    /// `Some(d)` selects mini-node `d` of the major node reached by `side`;
    /// `None` refers to the major node itself (its plain atom slot or its
    /// plain children).
    pub dis: Option<D>,
}

impl<D> PathElem<D> {
    /// A plain (disambiguator-free) element.
    pub const fn plain(side: Side) -> Self {
        PathElem { side, dis: None }
    }

    /// An element selecting mini-node `dis` on the `side` child.
    pub const fn mini(side: Side, dis: D) -> Self {
        PathElem {
            side,
            dis: Some(dis),
        }
    }

    /// Drops the disambiguator, keeping only the branch bit.
    pub fn to_plain(&self) -> PathElem<D>
    where
        D: Clone,
    {
        PathElem {
            side: self.side,
            dis: None,
        }
    }
}

impl<D: fmt::Debug> fmt::Debug for PathElem<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.dis {
            None => write!(f, "{}", self.side.bit()),
            Some(d) => write!(f, "({}:{:?})", self.side.bit(), d),
        }
    }
}

/// The region of a major node an identifier falls in, in infix order.
///
/// Used internally by the comparison routine; exposed for tests and for the
/// allocation logic which reasons about the same regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Region {
    /// Inside the major node's plain left subtree.
    LeftSubtree,
    /// The major node's own (disambiguator-free) atom slot.
    PlainSlot,
    /// One of the mini-nodes or their subtrees (ordered by disambiguator
    /// separately).
    Minis,
    /// Inside the major node's plain right subtree.
    RightSubtree,
}

/// A position identifier: a path in the extended binary tree.
///
/// The empty path identifies the (plain slot of the) root major node.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PosId<D> {
    elems: Vec<PathElem<D>>,
}

impl<D> Default for PosId<D> {
    fn default() -> Self {
        PosId { elems: Vec::new() }
    }
}

impl<D> PosId<D> {
    /// The identifier of the root position (empty path).
    pub const fn root() -> Self {
        PosId { elems: Vec::new() }
    }

    /// Builds an identifier from its elements.
    pub fn from_elems(elems: Vec<PathElem<D>>) -> Self {
        PosId { elems }
    }

    /// The path elements.
    pub fn elems(&self) -> &[PathElem<D>] {
        &self.elems
    }

    /// Number of path elements (= depth of the identified node, = number of
    /// bits of the path).
    pub fn depth(&self) -> usize {
        self.elems.len()
    }

    /// `true` for the root identifier.
    pub fn is_root(&self) -> bool {
        self.elems.is_empty()
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&PathElem<D>> {
        self.elems.last()
    }

    /// The sequence of branch bits, ignoring disambiguators.
    pub fn bits(&self) -> impl Iterator<Item = Side> + '_ {
        self.elems.iter().map(|e| e.side)
    }

    /// The branch bits as a vector of 0/1 values.
    pub fn bit_vec(&self) -> Vec<u8> {
        self.elems.iter().map(|e| e.side.bit()).collect()
    }

    /// Number of disambiguators carried by this identifier.
    pub fn dis_count(&self) -> usize {
        self.elems.iter().filter(|e| e.dis.is_some()).count()
    }

    /// The identifier of the parent node: the same path with the final
    /// element removed (paper §3.1: `u / v` iff `id(v) = id(u)·p` or
    /// `id(v) = id(u)·(p:d)`). Returns `None` for the root.
    pub fn parent(&self) -> Option<PosId<D>>
    where
        D: Clone,
    {
        if self.elems.is_empty() {
            None
        } else {
            Some(PosId {
                elems: self.elems[..self.elems.len() - 1].to_vec(),
            })
        }
    }

    /// Extends this identifier with one more element, producing a child
    /// identifier.
    pub fn child(&self, elem: PathElem<D>) -> PosId<D>
    where
        D: Clone,
    {
        let mut elems = self.elems.clone();
        elems.push(elem);
        PosId { elems }
    }

    /// Size of this identifier in bits: one bit per element plus the size of
    /// each disambiguator it carries. This is the quantity reported in the
    /// "PosID" columns of Table 1 and Table 4 of the paper.
    pub fn size_bits(&self) -> usize
    where
        D: Disambiguator,
    {
        self.elems.len() + self.dis_count() * D::ACCOUNTED_BYTES * 8
    }

    /// Size of this identifier in bytes (rounded up), the unit used when the
    /// identifier is shipped over the network.
    pub fn size_bytes(&self) -> usize
    where
        D: Disambiguator,
    {
        self.size_bits().div_ceil(8)
    }

    /// `true` if `self`'s elements are a strict prefix of `other`'s elements
    /// (the paper's ancestor relation `u /+ v`, applied element-wise).
    pub fn is_strict_prefix_of(&self, other: &PosId<D>) -> bool
    where
        D: PartialEq,
    {
        self.elems.len() < other.elems.len()
            && self.elems.iter().zip(&other.elems).all(|(a, b)| a == b)
    }

    /// The *compatible-ancestor* relation used by the allocation algorithm
    /// (Algorithm 1): `self` is an ancestor of `other` if `other`'s path
    /// passes through `self`'s position — either through `self`'s mini-node
    /// explicitly, or through the plain slot of `self`'s major node.
    ///
    /// This is the reading under which, in the paper's running example, atom
    /// `c` (id `[(1:dC)]`) is an ancestor of atom `d` (id `[1·(0:dD)]`): the
    /// bits of `c` are a prefix of the bits of `d`, and `d` does not descend
    /// through a *different* mini-node at `c`'s position.
    pub fn is_ancestor_of(&self, other: &PosId<D>) -> bool
    where
        D: PartialEq,
    {
        let n = self.elems.len();
        if n >= other.elems.len() {
            return false;
        }
        // All but the last element must match exactly (same branch and same
        // mini-node selection), because interior disambiguators denote a
        // genuinely different subtree.
        for i in 0..n.saturating_sub(1) {
            if self.elems[i] != other.elems[i] {
                return false;
            }
        }
        if n == 0 {
            return true;
        }
        // The element of `other` landing on `self`'s position must use the
        // same branch and either the same mini-node or the plain slot.
        let mine = &self.elems[n - 1];
        let theirs = &other.elems[n - 1];
        if mine.side != theirs.side {
            return false;
        }
        match (&mine.dis, &theirs.dis) {
            (_, None) => true,
            (Some(a), Some(b)) => a == b,
            (None, Some(_)) => false,
        }
    }

    /// `true` if `self` and `other` are mini-siblings: mini-nodes of the same
    /// major node (same branch bits, both carrying a final disambiguator,
    /// with identical interior elements).
    pub fn is_mini_sibling_of(&self, other: &PosId<D>) -> bool
    where
        D: PartialEq,
    {
        if self.elems.len() != other.elems.len() || self.elems.is_empty() {
            return false;
        }
        let n = self.elems.len();
        if self.elems[..n - 1] != other.elems[..n - 1] {
            return false;
        }
        let (a, b) = (&self.elems[n - 1], &other.elems[n - 1]);
        a.side == b.side && a.dis.is_some() && b.dis.is_some() && a.dis != b.dis
    }

    /// A copy of this identifier with the final disambiguator removed (the
    /// `c1 … pn` prefix used by Algorithm 1 when allocating a child of the
    /// *major* node rather than of the mini-node).
    pub fn major_path(&self) -> PosId<D>
    where
        D: Clone,
    {
        let mut elems = self.elems.clone();
        if let Some(last) = elems.last_mut() {
            last.dis = None;
        }
        PosId { elems }
    }

    /// Human-readable rendering, used in error messages.
    pub fn repr(&self) -> PosIdRepr
    where
        D: fmt::Debug,
    {
        PosIdRepr(format!("{self:?}"))
    }

    /// Region of the shared major node that this identifier falls in, when
    /// its element at `idx` is known to share the branch bit with another
    /// identifier's element at the same index.
    fn region_at(&self, idx: usize) -> Region {
        match self.elems.get(idx) {
            None => unreachable!("region_at called past the end of the path"),
            Some(e) if e.dis.is_some() => Region::Minis,
            Some(_) => match self.elems.get(idx + 1) {
                None => Region::PlainSlot,
                Some(next) if next.side == Side::Left => Region::LeftSubtree,
                Some(_) => Region::RightSubtree,
            },
        }
    }
}

impl<D: Disambiguator> PosId<D> {
    /// Compares two identifiers according to the infix-walk order of §3.1.
    ///
    /// See the module documentation for how the plain-versus-mini case is
    /// resolved.
    fn infix_cmp(&self, other: &PosId<D>) -> Ordering {
        let n = self.elems.len().min(other.elems.len());
        for i in 0..n {
            let a = &self.elems[i];
            let b = &other.elems[i];
            if a.side != b.side {
                return a.side.cmp(&b.side);
            }
            match (&a.dis, &b.dis) {
                (None, None) => continue,
                (Some(da), Some(db)) => match da.cmp(db) {
                    Ordering::Equal => continue,
                    o => return o,
                },
                // Same branch bit, one path goes through the major node's
                // plain namespace, the other through a mini-node: order by
                // region (left subtree < plain slot < minis < right subtree).
                (None, Some(_)) => return self.region_at(i).cmp(&Region::Minis),
                (Some(_), None) => return Region::Minis.cmp(&other.region_at(i)),
            }
        }
        // One is an element-wise prefix of the other (or they are equal): the
        // longer one sorts according to the branch it takes next.
        match self.elems.len().cmp(&other.elems.len()) {
            Ordering::Equal => Ordering::Equal,
            Ordering::Less => {
                // `self` is the prefix: `other` continues below it.
                if other.elems[n].side == Side::Right {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            Ordering::Greater => {
                if self.elems[n].side == Side::Right {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
        }
    }
}

impl<D: Disambiguator> PartialOrd for PosId<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<D: Disambiguator> Ord for PosId<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.infix_cmp(other)
    }
}

impl<D: fmt::Debug> fmt::Debug for PosId<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for e in &self.elems {
            write!(f, "{e:?}")?;
        }
        write!(f, "]")
    }
}

impl<D: fmt::Debug> fmt::Display for PosId<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A pre-rendered position identifier, used in error values so that
/// [`Error`](crate::Error) does not need to be generic over the
/// disambiguator type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PosIdRepr(pub String);

impl fmt::Display for PosIdRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::{Sdis, Udis};
    use crate::site::SiteId;

    fn s(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    /// Shorthand to build a `PosId<Sdis>` from a compact description:
    /// `p(&[(0, None), (1, Some(3))])` = `[0·(1:s3)]`.
    fn p(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(s),
                })
                .collect(),
        )
    }

    #[test]
    fn root_is_empty() {
        let r = PosId::<Sdis>::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.parent(), None);
    }

    #[test]
    fn parent_strips_last_element() {
        let id = p(&[(1, None), (0, Some(4))]);
        assert_eq!(id.parent().unwrap(), p(&[(1, None)]));
    }

    #[test]
    fn size_accounting() {
        // Two elements, one disambiguator: 2 bits + 48 bits (6-byte SDIS).
        let id = p(&[(1, None), (0, Some(4))]);
        assert_eq!(id.size_bits(), 2 + 48);
        assert_eq!(id.size_bytes(), (2usize + 48).div_ceil(8));

        // UDIS carries 10 bytes per disambiguator.
        let u: PosId<Udis> = PosId::from_elems(vec![PathElem::mini(
            Side::Left,
            Udis::new(1, SiteId::from_u64(1)),
        )]);
        assert_eq!(u.size_bits(), 1 + 80);
    }

    #[test]
    fn plain_bit_order() {
        // Figure 1 layout: a[00] < b[0] < c[] < d[10] < e[1] < f[11].
        let a = p(&[(0, None), (0, None)]);
        let b = p(&[(0, None)]);
        let c = p(&[]);
        let d = p(&[(1, None), (0, None)]);
        let e = p(&[(1, None)]);
        let f = p(&[(1, None), (1, None)]);
        let mut v = vec![
            f.clone(),
            d.clone(),
            b.clone(),
            e.clone(),
            c.clone(),
            a.clone(),
        ];
        v.sort();
        assert_eq!(v, vec![a, b, c, d, e, f]);
    }

    #[test]
    fn paper_example_order_after_concurrent_inserts() {
        // Figure 2–4 of the paper. In the Figure 1/2 tree, `c` is the root
        // atom and `d` hangs below it at bit path "10"; ids as derived in
        // §3.2:
        //   c  = []                  (the root, ancestor of d)
        //   d  = [1·(0:dD)]
        //   W  = [1·0·(0:dW)]        concurrent insert between c and d
        //   Y  = [1·0·(0:dY)]        concurrent insert between c and d
        //   X  = [1·0·(0:dW)·(1:dX)] inserted between W and Y
        //   Z  = [1·0·0·(1:dZ)]      inserted between Y and d
        // With dW < dY the document must read … c W X Y Z d …
        let c = p(&[]);
        let d = p(&[(1, None), (0, Some(4))]);
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let y = p(&[(1, None), (0, None), (0, Some(2))]);
        let x = p(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]);
        let z = p(&[(1, None), (0, None), (0, None), (1, Some(6))]);

        let expected = vec![
            c.clone(),
            w.clone(),
            x.clone(),
            y.clone(),
            z.clone(),
            d.clone(),
        ];
        let mut got = vec![d, z, x, w, y, c];
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn prefix_rule_orders_by_next_branch() {
        let base = p(&[(1, None), (0, Some(4))]);
        let left_child = p(&[(1, None), (0, None), (0, Some(9))]);
        let right_child = p(&[(1, None), (0, None), (1, Some(9))]);
        assert!(left_child < base);
        assert!(base < right_child);
    }

    #[test]
    fn plain_slot_sorts_before_minis_and_after_left_subtree() {
        // Same major node (bit path "0"): its plain slot, a mini-node, its
        // plain left subtree and its plain right subtree.
        let plain_slot = p(&[(0, None)]);
        let mini = p(&[(0, Some(2))]);
        let left_sub = p(&[(0, None), (0, Some(1))]);
        let right_sub = p(&[(0, None), (1, Some(1))]);
        assert!(left_sub < plain_slot);
        assert!(plain_slot < mini);
        assert!(mini < right_sub);
        assert!(left_sub < mini);
        assert!(plain_slot < right_sub);
    }

    #[test]
    fn mini_subtrees_sort_with_their_mini() {
        // Minis d1 < d2 at the same major node; d1's right subtree must sort
        // after d1 but before d2's left subtree.
        let d1 = p(&[(0, Some(1))]);
        let d1_right = p(&[(0, Some(1)), (1, Some(7))]);
        let d2_left = p(&[(0, Some(2)), (0, Some(7))]);
        let d2 = p(&[(0, Some(2))]);
        assert!(d1 < d1_right);
        assert!(d1_right < d2_left);
        assert!(d2_left < d2);
    }

    #[test]
    fn ancestor_relation_follows_paper_example() {
        // c = [(1:dC)] is an ancestor of d = [1·(0:dD)] (the example in §3.2
        // relies on this), even though the element forms differ.
        let c = p(&[(1, Some(3))]);
        let d = p(&[(1, None), (0, Some(4))]);
        assert!(c.is_ancestor_of(&d));
        assert!(!d.is_ancestor_of(&c));

        // But a path descending through a *different* mini-node is not a
        // descendant: W is not an ancestor of a node below Y.
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let below_y = p(&[(1, None), (0, None), (0, Some(2)), (0, Some(9))]);
        assert!(!w.is_ancestor_of(&below_y));
        // ... while Y itself is.
        let y = p(&[(1, None), (0, None), (0, Some(2))]);
        assert!(y.is_ancestor_of(&below_y));
    }

    #[test]
    fn root_is_ancestor_of_everything_but_itself() {
        let root = PosId::<Sdis>::root();
        let other = p(&[(0, Some(1))]);
        assert!(root.is_ancestor_of(&other));
        assert!(!root.is_ancestor_of(&PosId::root()));
    }

    #[test]
    fn mini_siblings() {
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let y = p(&[(1, None), (0, None), (0, Some(2))]);
        let elsewhere = p(&[(1, None), (1, None), (0, Some(2))]);
        assert!(w.is_mini_sibling_of(&y));
        assert!(y.is_mini_sibling_of(&w));
        assert!(!w.is_mini_sibling_of(&w.clone()));
        assert!(!w.is_mini_sibling_of(&elsewhere));
    }

    #[test]
    fn major_path_strips_final_disambiguator_only() {
        let x = p(&[(1, None), (0, Some(1)), (1, Some(5))]);
        assert_eq!(x.major_path(), p(&[(1, None), (0, Some(1)), (1, None)]));
    }

    #[test]
    fn debug_rendering() {
        let x = p(&[(1, None), (0, Some(1))]);
        assert_eq!(format!("{x:?}"), "[1(0:s1)]");
        assert_eq!(x.repr().to_string(), "[1(0:s1)]");
    }

    #[test]
    fn ordering_is_consistent_with_equality() {
        let a = p(&[(1, None), (0, Some(1))]);
        let b = p(&[(1, None), (0, Some(1))]);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a, b);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_elem() -> impl Strategy<Value = PathElem<Sdis>> {
            (0u8..2, proptest::option::of(0u64..4)).prop_map(|(bit, dis)| PathElem {
                side: Side::from_bit(bit),
                dis: dis.map(s),
            })
        }

        fn arb_posid() -> impl Strategy<Value = PosId<Sdis>> {
            proptest::collection::vec(arb_elem(), 0..8).prop_map(PosId::from_elems)
        }

        proptest! {
            /// Antisymmetry + totality: exactly one of <, =, > holds, and it
            /// is the mirror of the reverse comparison.
            #[test]
            fn comparison_is_antisymmetric(a in arb_posid(), b in arb_posid()) {
                let ab = a.cmp(&b);
                let ba = b.cmp(&a);
                prop_assert_eq!(ab, ba.reverse());
                if ab == Ordering::Equal {
                    prop_assert_eq!(&a, &b);
                }
            }

            /// Transitivity, checked through sort consistency on triples.
            #[test]
            fn comparison_is_transitive(a in arb_posid(), b in arb_posid(), c in arb_posid()) {
                if a <= b && b <= c {
                    prop_assert!(a <= c, "{:?} <= {:?} <= {:?} but not {:?} <= {:?}", a, b, c, a, c);
                }
                if a >= b && b >= c {
                    prop_assert!(a >= c);
                }
            }

            /// A node sorts after everything in its left subtree and before
            /// everything in its right subtree.
            #[test]
            fn children_sort_around_parent(base in arb_posid(), tail in arb_posid(), d in 0u64..4) {
                let left_first = base.child(PathElem::mini(Side::Left, s(d)));
                let right_first = base.child(PathElem::mini(Side::Right, s(d)));
                // Arbitrary deeper descendants keep the relation.
                let mut deep_left = left_first.clone();
                let mut deep_right = right_first.clone();
                for e in tail.elems() {
                    deep_left = deep_left.child(e.clone());
                    deep_right = deep_right.child(e.clone());
                }
                if base.last().map(|e| e.dis.is_some()).unwrap_or(true) {
                    // `base` names an actual atom slot (mini or root plain slot).
                    prop_assert!(left_first < base);
                    prop_assert!(base < right_first);
                }
                prop_assert!(left_first < right_first);
                prop_assert!(deep_left < deep_right || left_first == right_first);
            }

            /// Sorting is stable under shuffling (i.e. the order is total and
            /// deterministic).
            #[test]
            fn sort_is_deterministic(mut ids in proptest::collection::vec(arb_posid(), 0..12)) {
                let mut once = ids.clone();
                once.sort();
                ids.reverse();
                ids.sort();
                prop_assert_eq!(once, ids);
            }
        }
    }
}
