//! Mixed array / tree storage (§4.2).
//!
//! The paper observes that the identifier tree is only needed where the
//! document is actively being edited; quiescent documents (or regions) can be
//! stored as a plain atom array with *zero* metadata overhead, and converted
//! back to tree form lazily ("Array storage is converted to tree storage when
//! necessary, e.g., when applying a path to an array. Therefore we can
//! eliminate explicit explode operations").
//!
//! [`Representation`] implements exactly this switch: it is either an
//! [`Array`](StorageKind::Array) of atoms or a full identifier
//! [`Tree`](StorageKind::Tree). Reading works on both; any operation that
//! needs identifiers promotes the array to the canonical `explode` tree
//! first, and [`Representation::compact`] demotes a metadata-free tree back
//! to an array.

use serde::{Deserialize, Serialize};

use crate::atom::Atom;
use crate::disambiguator::Disambiguator;
use crate::flatten::explode;
use crate::stats::DocStats;
use crate::tree::Tree;

/// Which representation currently backs the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// A plain atom array: no identifiers stored at all.
    Array,
    /// The extended binary tree with explicit identifiers.
    Tree,
}

/// A document region stored either as a plain array or as an identifier tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Representation<A, D> {
    /// Array storage: the atoms in document order, nothing else.
    Array(Vec<A>),
    /// Tree storage: the full edit-oriented structure.
    Tree(Tree<A, D>),
}

impl<A: Atom, D: Disambiguator> Default for Representation<A, D> {
    fn default() -> Self {
        Representation::Array(Vec::new())
    }
}

impl<A: Atom, D: Disambiguator> Representation<A, D> {
    /// Creates array storage from a sequence of atoms.
    pub fn from_atoms(atoms: Vec<A>) -> Self {
        Representation::Array(atoms)
    }

    /// Which representation is currently in use.
    pub fn kind(&self) -> StorageKind {
        match self {
            Representation::Array(_) => StorageKind::Array,
            Representation::Tree(_) => StorageKind::Tree,
        }
    }

    /// Number of live atoms.
    pub fn len(&self) -> usize {
        match self {
            Representation::Array(a) => a.len(),
            Representation::Tree(t) => t.live_len(),
        }
    }

    /// `true` when the document holds no atom.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The atoms in document order (clones; both representations support it).
    pub fn to_vec(&self) -> Vec<A> {
        match self {
            Representation::Array(a) => a.clone(),
            Representation::Tree(t) => t.to_vec(),
        }
    }

    /// The atom at `index`, if any.
    pub fn get(&self, index: usize) -> Option<A> {
        match self {
            Representation::Array(a) => a.get(index).cloned(),
            Representation::Tree(t) => t.atom_at(index).cloned(),
        }
    }

    /// Promotes array storage to tree storage (implicit `explode`); a no-op
    /// if the document is already tree-backed. Returns the tree.
    pub fn ensure_tree(&mut self) -> &mut Tree<A, D> {
        if let Representation::Array(atoms) = self {
            let tree = explode(atoms);
            *self = Representation::Tree(tree);
        }
        match self {
            Representation::Tree(t) => t,
            Representation::Array(_) => unreachable!("just promoted"),
        }
    }

    /// Demotes tree storage back to a plain array when it carries no
    /// metadata any more (no tombstones, no ghosts, no disambiguators) —
    /// i.e. right after a full flatten. Returns `true` if the representation
    /// changed.
    pub fn compact(&mut self) -> bool {
        let Representation::Tree(tree) = self else {
            return false;
        };
        let stats = DocStats::measure(tree);
        let metadata_free = stats.total_nodes == stats.live_atoms
            && stats.pos_ids.total_bits == plain_bits_total(tree);
        if metadata_free {
            *self = Representation::Array(tree.to_vec());
            true
        } else {
            false
        }
    }

    /// Metadata overhead in bytes: zero for array storage, the identifier
    /// bytes for tree storage.
    pub fn metadata_bytes(&self) -> usize {
        match self {
            Representation::Array(_) => 0,
            Representation::Tree(t) => DocStats::measure(t).pos_ids.total_bits.div_ceil(8),
        }
    }
}

/// Total identifier size the tree would have if every slot were plain (pure
/// bit paths): used to detect that a tree carries no disambiguators.
fn plain_bits_total<A: Atom, D: Disambiguator>(tree: &Tree<A, D>) -> usize {
    let mut total = 0;
    tree.for_each_slot(|slot| {
        total += slot.bits.len();
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::Sdis;
    use crate::path::{PathElem, PosId, Side};
    use crate::site::SiteId;

    fn sd(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    #[test]
    fn array_storage_has_zero_overhead() {
        let atoms: Vec<String> = (0..20).map(|i| format!("l{i}")).collect();
        let rep: Representation<String, Sdis> = Representation::from_atoms(atoms.clone());
        assert_eq!(rep.kind(), StorageKind::Array);
        assert_eq!(rep.len(), 20);
        assert_eq!(rep.to_vec(), atoms);
        assert_eq!(rep.metadata_bytes(), 0);
        assert_eq!(rep.get(3).as_deref(), Some("l3"));
        assert_eq!(rep.get(25), None);
    }

    #[test]
    fn promotion_preserves_content() {
        let atoms: Vec<String> = (0..20).map(|i| format!("l{i}")).collect();
        let mut rep: Representation<String, Sdis> = Representation::from_atoms(atoms.clone());
        rep.ensure_tree();
        assert_eq!(rep.kind(), StorageKind::Tree);
        assert_eq!(rep.to_vec(), atoms);
        assert_eq!(rep.get(7).as_deref(), Some("l7"));
        // The promoted tree is canonical, so it still compacts back.
        assert!(rep.compact());
        assert_eq!(rep.kind(), StorageKind::Array);
        assert_eq!(rep.to_vec(), atoms);
    }

    #[test]
    fn edited_tree_does_not_compact_until_flattened() {
        let mut rep: Representation<char, Sdis> = Representation::from_atoms(vec!['a', 'b', 'c']);
        {
            let tree = rep.ensure_tree();
            // Insert an atom with a disambiguated identifier, then delete one
            // leaving a tombstone: the tree now carries metadata.
            let last = tree.id_of_live_index(2).unwrap();
            let id = last.child(PathElem::mini(Side::Right, sd(1)));
            tree.insert(&id, 'd', 1).unwrap();
            let first: PosId<Sdis> = tree.id_of_live_index(0).unwrap();
            tree.delete(&first, 2).unwrap();
        }
        assert!(
            !rep.compact(),
            "tombstone + disambiguator must block compaction"
        );
        assert!(rep.metadata_bytes() > 0);
        // A full flatten removes the metadata and compaction succeeds again.
        {
            let tree = rep.ensure_tree();
            crate::flatten::flatten_subtree(tree, &[]).unwrap();
        }
        assert!(rep.compact());
        assert_eq!(rep.kind(), StorageKind::Array);
        assert_eq!(rep.to_vec(), vec!['b', 'c', 'd']);
        assert_eq!(rep.metadata_bytes(), 0);
    }

    #[test]
    fn default_is_empty_array() {
        let rep: Representation<char, Sdis> = Representation::default();
        assert!(rep.is_empty());
        assert_eq!(rep.kind(), StorageKind::Array);
    }
}
