//! Edit operations shipped between replicas (§2.2).
//!
//! The abstract buffer data type has exactly two edit operations:
//!
//! * `insert(PosID, atom)` — the position identifier is *fresh* (allocated by
//!   the initiating replica with Algorithm 1), so concurrent inserts always
//!   target different identifiers and therefore commute;
//! * `delete(PosID)` — idempotent, so concurrent deletes of the same atom
//!   commute; an insert always happens-before a delete of the same
//!   identifier, so that pair is never concurrent.
//!
//! Structural clean-up (`explode` / `flatten`) is *not* an ordinary
//! operation: it does not commute with edits and is agreed upon with a
//! distributed commitment protocol instead (§4.2.1, see the `treedoc-commit`
//! crate).

use serde::{Deserialize, Serialize};

use crate::disambiguator::Disambiguator;
use crate::path::PosId;
use crate::site::SiteId;

/// The kind of an operation, without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// An insertion.
    Insert,
    /// A deletion.
    Delete,
}

/// An edit operation on the shared buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op<A, D> {
    /// Insert `atom` at the (fresh, unique) identifier `id`.
    Insert {
        /// The freshly allocated position identifier.
        id: PosId<D>,
        /// The inserted atom.
        atom: A,
    },
    /// Delete the atom identified by `id`.
    Delete {
        /// The identifier of the atom to delete.
        id: PosId<D>,
    },
}

impl<A, D> Op<A, D> {
    /// The identifier this operation refers to.
    pub fn id(&self) -> &PosId<D> {
        match self {
            Op::Insert { id, .. } | Op::Delete { id } => id,
        }
    }

    /// The kind of this operation.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Insert { .. } => OpKind::Insert,
            Op::Delete { .. } => OpKind::Delete,
        }
    }

    /// `true` for inserts.
    pub fn is_insert(&self) -> bool {
        matches!(self, Op::Insert { .. })
    }

    /// `true` for deletes.
    pub fn is_delete(&self) -> bool {
        matches!(self, Op::Delete { .. })
    }
}

impl<A, D: Disambiguator> Op<A, D> {
    /// The site that initiated this operation, when it can be recovered from
    /// the identifier (inserts always carry the initiator's disambiguator;
    /// deletes refer to the identifier of the *deleted* atom, so the answer
    /// is the inserting site, not the deleting one).
    pub fn inserting_site(&self) -> Option<SiteId> {
        self.id().last_dis().map(|d| d.site())
    }

    /// Size in bytes of the operation when shipped over the network: the
    /// position identifier plus, for inserts, the atom itself. This is the
    /// accounting used for the network-cost estimate of §5.2.
    pub fn network_bytes(&self) -> usize
    where
        A: crate::atom::Atom,
    {
        match self {
            Op::Insert { id, atom } => id.size_bytes() + atom.content_bytes(),
            Op::Delete { id } => id.size_bytes(),
        }
    }

    /// Two operations *conflict* when they refer to the same identifier.
    /// Concurrent operations never conflict except for delete/delete pairs,
    /// which are idempotent; this is what makes the type a CRDT.
    pub fn same_target(&self, other: &Op<A, D>) -> bool
    where
        D: PartialEq,
    {
        self.id() == other.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::Sdis;
    use crate::path::{PathElem, Side};
    use crate::site::SiteId;

    fn id(site: u64) -> PosId<Sdis> {
        PosId::from_elems(vec![PathElem::mini(
            Side::Left,
            Sdis::new(SiteId::from_u64(site)),
        )])
    }

    #[test]
    fn accessors() {
        let ins: Op<char, Sdis> = Op::Insert {
            id: id(1),
            atom: 'x',
        };
        let del: Op<char, Sdis> = Op::Delete { id: id(1) };
        assert_eq!(ins.kind(), OpKind::Insert);
        assert_eq!(del.kind(), OpKind::Delete);
        assert!(ins.is_insert() && !ins.is_delete());
        assert!(del.is_delete() && !del.is_insert());
        assert!(ins.same_target(&del));
        assert_eq!(ins.inserting_site(), Some(SiteId::from_u64(1)));
    }

    #[test]
    fn network_cost_counts_id_and_atom() {
        let ins: Op<String, Sdis> = Op::Insert {
            id: id(1),
            atom: "hello".into(),
        };
        let del: Op<String, Sdis> = Op::Delete { id: id(1) };
        // id: 1 bit + 48-bit SDIS → 7 bytes; insert adds the 5 content bytes.
        assert_eq!(del.network_bytes(), 7);
        assert_eq!(ins.network_bytes(), 12);
    }

    #[test]
    fn serde_round_trip() {
        let ins: Op<String, Sdis> = Op::Insert {
            id: id(3),
            atom: "line".into(),
        };
        let json = serde_json::to_string(&ins).unwrap();
        let back: Op<String, Sdis> = serde_json::from_str(&json).unwrap();
        assert_eq!(ins, back);
    }
}
