//! Allocation of fresh position identifiers.
//!
//! [`new_pos_id`] implements Algorithm 1 of the paper: given the identifiers
//! of two *adjacent* nodes `p < f` (adjacent in the full tree, i.e. no
//! occupied slot lies between them — tombstones included, which is what makes
//! SDIS reuse safe, §3.3.2), it returns a fresh identifier strictly between
//! them. The four cases of the algorithm:
//!
//! 1. `p` is an ancestor of `f` → the new node becomes the *left child of
//!    `f`'s major node*;
//! 2. `f` is an ancestor of `p` → the new node becomes the *right child of
//!    `p`'s major node*;
//! 3. `p` and `f` are mini-siblings, or a mini-sibling of `p` is an ancestor
//!    of `f` → the new node becomes the *right child of the mini-node `p`*
//!    (it must live in `p`'s own namespace to stay between the siblings);
//! 4. otherwise → the new node becomes the right child of `p`'s major node.
//!
//! The ancestor test is the *compatible-ancestor* relation of
//! [`PosId::is_ancestor_of`]; see that method's documentation for why the
//! paper's own running example requires it.
//!
//! The module also provides the §4.1 balancing strategies:
//!
//! * [`balanced_append`] — when repeatedly appending at the end of the
//!   document, grow the tree by `⌈log₂ h⌉ + 1` levels at once and hand out
//!   the slots of the freshly grown subtree one by one instead of growing a
//!   degenerate right spine;
//! * [`batch_subtree_ids`] — when inserting a known run of `n` consecutive
//!   atoms (e.g. a whole diff hunk while replaying a revision), lay them out
//!   as the infix order of a minimal complete subtree.

use crate::disambiguator::Disambiguator;
use crate::path::{PathElem, PosId, Side};

/// The neighbours of an insertion point: the identifiers of the occupied
/// slots immediately before and after the gap (either may be absent at the
/// document edges). They must be adjacent in the full tree.
#[derive(Debug, Clone)]
pub struct Neighbours<'a, D> {
    /// The slot immediately before the insertion point.
    pub before: Option<&'a PosId<D>>,
    /// The slot immediately after the insertion point.
    pub after: Option<&'a PosId<D>>,
}

impl<'a, D> Neighbours<'a, D> {
    /// Convenience constructor.
    pub fn new(before: Option<&'a PosId<D>>, after: Option<&'a PosId<D>>) -> Self {
        Neighbours { before, after }
    }
}

/// Allocates a fresh identifier strictly between `neighbours.before` and
/// `neighbours.after` (Algorithm 1), using `dis` as the disambiguator of the
/// new node.
pub fn new_pos_id<D: Disambiguator>(neighbours: Neighbours<'_, D>, dis: D) -> PosId<D> {
    match (neighbours.before, neighbours.after) {
        // Empty document: create the first mini-node as the left child of the
        // (empty) root major node.
        (None, None) => PosId::from_elems(vec![PathElem::mini(Side::Left, dis)]),
        // Insert at the very beginning: the new node becomes the left child
        // of `f`'s major node, which is necessarily free because `f` is the
        // first occupied slot of the tree.
        (None, Some(f)) => child_of_major(f, Side::Left, dis),
        // Insert at the very end: right child of `p`'s major node.
        (Some(p), None) => child_of_major(p, Side::Right, dis),
        (Some(p), Some(f)) => {
            debug_assert!(p < f, "neighbours must satisfy p < f (got {p:?} !< {f:?})");
            if p.is_ancestor_of(f) {
                // Line 4: left child of f's major node.
                child_of_major(f, Side::Left, dis)
            } else if f.is_ancestor_of(p) {
                // Line 5: right child of p's major node.
                child_of_major(p, Side::Right, dis)
            } else if p.is_mini_sibling_of(f) || sibling_ancestor_of(p, f) {
                // Line 6: right child of the mini-node p itself.
                p.child(PathElem::mini(Side::Right, dis))
            } else {
                // Line 7: right child of p's major node.
                child_of_major(p, Side::Right, dis)
            }
        }
    }
}

/// `∃ m : MiniSibling(p, m) ∧ m > p ∧ m is an ancestor of f` — the second
/// disjunct of line 6 of Algorithm 1. Because we only know `p` and `f` (not
/// the whole tree), the witness `m` is recovered from `f` itself: it must be
/// the mini-node of `p`'s major node that `f`'s path descends through.
fn sibling_ancestor_of<D: Disambiguator>(p: &PosId<D>, f: &PosId<D>) -> bool {
    let n = p.depth();
    if n == 0 || f.depth() < n {
        return false;
    }
    let (Some((f_side, Some(dm))), Some(dp)) = (f.elem_at(n - 1), p.last_dis()) else {
        return false;
    };
    if p.last_side() != Some(f_side) || p.common_prefix_len(f) < n - 1 {
        return false;
    }
    // `f` descends through (or is) mini-node `dm` of p's major node; the
    // only relevant witnesses are *greater* siblings (`p < f` rules the
    // others out anyway, and `dm == dp` is the ancestor case of line 5).
    dm > dp
}

/// The new mini-node `dis` attached as the `side` child of the *major* node
/// of `base`: `base`'s path with its final disambiguator dropped, extended
/// with `(side : dis)`.
fn child_of_major<D: Disambiguator>(base: &PosId<D>, side: Side, dis: D) -> PosId<D> {
    base.major_path().child(PathElem::mini(side, dis))
}

/// Number of levels the tree is grown by when [`balanced_append`] runs out of
/// reserved slots: `⌈log₂ h⌉ + 1` where `h` is the current height (§4.1).
pub fn growth_levels(height: usize) -> usize {
    let h = height.max(1);
    (usize::BITS - (h - 1).leading_zeros()) as usize + 1
}

/// A batch of identifiers produced by the balancing strategies: the first one
/// is used immediately, the rest are kept as a reservation for the following
/// appends (§4.1: "the following atoms would consecutively use the PosIDs for
/// the empty nodes in the sub-tree").
#[derive(Debug, Clone)]
pub struct GrownSlots<D> {
    /// Plain slot positions (bit paths) in infix order; the element carrying
    /// the disambiguator is appended when an atom is actually placed there.
    pub slots: Vec<PosId<D>>,
}

/// Balanced append (§4.1): instead of creating an immediate right child of
/// the last atom, grow the tree by [`growth_levels`] levels and return the
/// plain positions of the freshly grown complete subtree, smallest first.
///
/// `last` is the identifier of the current last atom; `height` the current
/// height of the tree.
pub fn balanced_append<D: Disambiguator>(last: &PosId<D>, height: usize) -> GrownSlots<D> {
    let levels = growth_levels(height);
    // Root of the grown subtree: the right child position of the last atom's
    // major node.
    let root = last.major_path().child(PathElem::plain(Side::Right));
    GrownSlots {
        slots: complete_subtree_positions(&root, levels),
    }
}

/// The positions of a complete binary subtree of `depth` levels rooted at
/// `root`, in infix order (`2^depth - 1` positions, including the root).
pub fn complete_subtree_positions<D: Disambiguator>(
    root: &PosId<D>,
    depth: usize,
) -> Vec<PosId<D>> {
    let mut out = Vec::with_capacity((1usize << depth) - 1);
    fn rec<D: Disambiguator>(node: &PosId<D>, levels_left: usize, out: &mut Vec<PosId<D>>) {
        if levels_left == 0 {
            return;
        }
        rec(
            &node.child(PathElem::plain(Side::Left)),
            levels_left - 1,
            out,
        );
        out.push(node.clone());
        rec(
            &node.child(PathElem::plain(Side::Right)),
            levels_left - 1,
            out,
        );
    }
    rec(root, depth, &mut out);
    out
}

/// Identifiers for a run of `n` consecutive atoms inserted between two
/// neighbours, laid out as a minimal complete subtree (the balancing variant
/// evaluated in §5.1: "group all the consecutive inserts of a given revision
/// into a minimal sub-tree").
///
/// The returned identifiers are in document order and each carries `dis` via
/// the provided generator (one fresh disambiguator per atom).
pub fn batch_subtree_ids<D: Disambiguator>(
    neighbours: Neighbours<'_, D>,
    n: usize,
    mut next_dis: impl FnMut() -> D,
) -> Vec<PosId<D>> {
    if n == 0 {
        return Vec::new();
    }
    // Anchor the subtree at the slot Algorithm 1 would have allocated for a
    // single atom; that position is free and strictly between the
    // neighbours, so the whole complete subtree rooted there is too.
    let anchor = new_pos_id(neighbours, next_dis());
    let anchor_major = anchor.major_path();
    // Depth of the minimal complete subtree able to hold n atoms
    // (Algorithm 2: ⌈log₂(n + 1)⌉).
    let depth = (usize::BITS - n.leading_zeros()) as usize;
    let positions = complete_subtree_positions(&anchor_major, depth);
    debug_assert!(positions.len() >= n);
    // Use the first n positions in infix order and attach one fresh
    // disambiguator to each (the first atom reuses the anchor's).
    let mut out = Vec::with_capacity(n);
    for (i, pos) in positions.into_iter().take(n).enumerate() {
        let side = pos
            .last_side()
            .expect("subtree positions are never the root");
        let dis = if i == 0 {
            anchor.last_dis().cloned().unwrap_or_else(&mut next_dis)
        } else {
            next_dis()
        };
        let parent = pos.parent().expect("subtree positions are never the root");
        out.push(parent.child_mini(side, dis));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::Sdis;
    use crate::site::SiteId;

    fn d(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    fn p(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(d),
                })
                .collect(),
        )
    }

    #[test]
    fn empty_document_allocation() {
        let id = new_pos_id(Neighbours::<Sdis>::new(None, None), d(1));
        assert_eq!(id, p(&[(0, Some(1))]));
    }

    #[test]
    fn append_and_prepend() {
        let first = p(&[(0, Some(1))]);
        let appended = new_pos_id(Neighbours::new(Some(&first), None), d(1));
        assert!(first < appended);
        let prepended = new_pos_id(Neighbours::new(None, Some(&first)), d(1));
        assert!(prepended < first);
    }

    #[test]
    fn paper_example_insert_between_c_and_d() {
        // §3.2: c (the root atom of the Figure 1/2 tree) is an ancestor of
        // d = [1·(0:dD)]; inserting Y between them creates the left child of
        // d's major node.
        let c = p(&[]);
        let dd = p(&[(1, None), (0, Some(4))]);
        let y = new_pos_id(Neighbours::new(Some(&c), Some(&dd)), d(7));
        assert_eq!(y, p(&[(1, None), (0, None), (0, Some(7))]));
        assert!(c < y && y < dd);

        // Inserting Z between Y and d: d is an ancestor of Y, so Z becomes
        // the right child of Y's major node: [1·0·0·(1:dZ)].
        let z = new_pos_id(Neighbours::new(Some(&y), Some(&dd)), d(8));
        assert_eq!(z, p(&[(1, None), (0, None), (0, None), (1, Some(8))]));
        assert!(y < z && z < dd);
    }

    #[test]
    fn paper_example_insert_between_mini_siblings() {
        // Figure 4: W and Y are mini-siblings; X inserted between them must
        // become the right child of the mini-node W.
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let y = p(&[(1, None), (0, None), (0, Some(2))]);
        let x = new_pos_id(Neighbours::new(Some(&w), Some(&y)), d(5));
        assert_eq!(x, p(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]));
        assert!(w < x && x < y);
    }

    #[test]
    fn insert_before_node_below_greater_mini_sibling() {
        // Line 6, second disjunct: p = W, f lives below W's greater sibling
        // Y; the new node still becomes W's right child.
        let w = p(&[(1, None), (0, None), (0, Some(1))]);
        let below_y = p(&[(1, None), (0, None), (0, Some(2)), (0, Some(9))]);
        let x = new_pos_id(Neighbours::new(Some(&w), Some(&below_y)), d(5));
        assert_eq!(x, p(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]));
        assert!(w < x && x < below_y);
    }

    #[test]
    fn allocation_stays_strictly_between_disjoint_subtrees() {
        // p and f in disjoint subtrees (neither ancestor of the other, not
        // siblings): line 7.
        let a = p(&[(0, Some(1)), (1, Some(2))]);
        let b = p(&[(1, Some(3))]);
        let n = new_pos_id(Neighbours::new(Some(&a), Some(&b)), d(9));
        assert!(a < n && n < b, "{a:?} < {n:?} < {b:?}");
    }

    #[test]
    fn growth_levels_matches_paper_example() {
        // §4.1: a tree of height 3 grows by ⌈log₂ 3⌉ + 1 = 3 levels.
        assert_eq!(growth_levels(3), 3);
        assert_eq!(growth_levels(1), 1);
        assert_eq!(growth_levels(2), 2);
        assert_eq!(growth_levels(4), 3);
        assert_eq!(growth_levels(8), 4);
        assert_eq!(growth_levels(9), 5);
    }

    #[test]
    fn balanced_append_grows_a_complete_subtree() {
        // Paper example (Figure 5): appending after f = [1·(1:dF)] in a tree
        // of height 3 grows a depth-3 subtree rooted at the right child of
        // f's major node; the new atom takes its smallest (leftmost) slot
        // [1·1·1·0·0].
        let f = p(&[(1, None), (1, Some(6))]);
        let grown = balanced_append(&f, 3);
        assert_eq!(grown.slots.len(), 7);
        let first = &grown.slots[0];
        assert_eq!(
            first.bit_vec(),
            vec![1, 1, 1, 0, 0],
            "smallest slot of the grown subtree"
        );
        // Slots are in infix order and all follow f.
        for w in grown.slots.windows(2) {
            assert!(w[0] < w[1]);
        }
        for s in &grown.slots {
            assert!(&f < s);
        }
    }

    #[test]
    fn complete_subtree_positions_are_infix_ordered() {
        let root = p(&[(1, None)]);
        let slots = complete_subtree_positions(&root, 3);
        assert_eq!(slots.len(), 7);
        for w in slots.windows(2) {
            assert!(w[0] < w[1]);
        }
        // The middle one is the root itself.
        assert_eq!(slots[3], root);
    }

    #[test]
    fn batch_ids_are_ordered_and_between_neighbours() {
        let before = p(&[(0, Some(1))]);
        let after = p(&[(1, Some(1))]);
        let mut counter = 10u64;
        let ids = batch_subtree_ids(Neighbours::new(Some(&before), Some(&after)), 5, move || {
            counter += 1;
            d(counter)
        });
        assert_eq!(ids.len(), 5);
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
        for id in &ids {
            assert!(&before < id && id < &after);
        }
        // Depth of a minimal subtree for 5 atoms is 3, so identifiers stay
        // within 3 extra levels of the anchor.
        let max_depth = ids.iter().map(|i| i.depth()).max().unwrap();
        assert!(max_depth <= before.depth() + 1 + 3);
    }

    #[test]
    fn batch_of_one_is_algorithm_one() {
        let before = p(&[(0, Some(1))]);
        let mut calls = 0;
        let ids = batch_subtree_ids(Neighbours::new(Some(&before), None), 1, || {
            calls += 1;
            d(99)
        });
        assert_eq!(ids.len(), 1);
        assert!(before < ids[0]);
    }

    #[test]
    fn batch_of_zero_is_empty() {
        let ids = batch_subtree_ids(Neighbours::<Sdis>::new(None, None), 0, || d(1));
        assert!(ids.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_elem() -> impl Strategy<Value = PathElem<Sdis>> {
            (0u8..2, proptest::option::of(0u64..4)).prop_map(|(bit, dis)| PathElem {
                side: Side::from_bit(bit),
                dis: dis.map(d),
            })
        }

        fn arb_posid() -> impl Strategy<Value = PosId<Sdis>> {
            proptest::collection::vec(arb_elem(), 1..7).prop_map(PosId::from_elems)
        }

        proptest! {
            /// Whatever the (ordered) neighbours, the allocated identifier is
            /// strictly between them. Adjacency cannot be expressed on bare
            /// identifiers, so this checks the weaker strict-betweenness
            /// property; the document-level property tests (doc.rs) cover the
            /// full behaviour against a real tree.
            #[test]
            fn allocation_is_strictly_between(a in arb_posid(), b in arb_posid(), site in 0u64..8) {
                prop_assume!(a != b);
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let id = new_pos_id(Neighbours::new(Some(&lo), Some(&hi)), d(site));
                // Strictly greater than the left neighbour in every case.
                prop_assert!(lo < id, "{:?} !< {:?} (hi {:?})", lo, id, hi);
            }

            /// Appending after any identifier yields a strictly larger one;
            /// prepending yields a strictly smaller one.
            #[test]
            fn edges_allocate_outside(a in arb_posid(), site in 0u64..8) {
                let after = new_pos_id(Neighbours::new(Some(&a), None), d(site));
                prop_assert!(a < after);
                let before = new_pos_id(Neighbours::new(None, Some(&a)), d(site));
                prop_assert!(before < a);
            }

            /// Complete subtrees are always infix-ordered, whatever the root.
            #[test]
            fn subtree_positions_sorted(root in arb_posid(), depth in 1usize..5) {
                let slots = complete_subtree_positions(&root.major_path(), depth);
                prop_assert_eq!(slots.len(), (1usize << depth) - 1);
                for w in slots.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
    }
}
