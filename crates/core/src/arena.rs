//! Interning arena for position-identifier path chunks.
//!
//! Identifiers derived from one another already share their prefix chunks by
//! construction (see [`crate::path`]), but identifiers that arrive through
//! *independent* channels — decoded from disk images, rebuilt from wire
//! deltas by different peers, or reconstructed element-by-element — carry
//! structurally equal but pointer-distinct chains. A [`PathArena`] unifies
//! them: interning an identifier rewrites its chunk chain onto canonical
//! nodes, so that equality and comparison between any two interned
//! identifiers short-circuit on pointer identity at the shared prefix, and
//! equal prefixes are stored once.
//!
//! The table maps `(parent chunk address, segment)` to a [`Weak`] reference
//! of the canonical chunk. Keying by address is sound because a *live* entry
//! pins its parent: every chunk node holds an `Arc` to its parent, so while
//! any table entry's node is alive its parent's address cannot be reused. A
//! *dead* entry (all interned identifiers dropped) can alias a recycled
//! address, but its `Weak` no longer upgrades, so it can never canonicalise
//! a lookup — it is dropped on touch, and bulk-swept once the table doubles
//! past the last sweep (amortised O(1) per intern).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Weak};

use crate::path::{PathNode, PosId, Seg};

/// Minimum table size before dead-entry sweeps start.
const PURGE_FLOOR: usize = 1024;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ArenaKey<D> {
    /// Address of the parent chunk node (0 for the root).
    parent: usize,
    seg: Seg<D>,
}

/// An interning table unifying structurally equal path chunks onto shared
/// nodes. See the module documentation.
#[derive(Debug, Clone)]
pub struct PathArena<D> {
    table: HashMap<ArenaKey<D>, Weak<PathNode<D>>>,
    /// Sweep dead entries when the table grows past this size.
    purge_at: usize,
}

impl<D> Default for PathArena<D> {
    fn default() -> Self {
        PathArena {
            table: HashMap::new(),
            purge_at: PURGE_FLOOR,
        }
    }
}

fn addr<D>(parent: &Option<Arc<PathNode<D>>>) -> usize {
    parent.as_ref().map_or(0, |a| Arc::as_ptr(a) as usize)
}

impl<D: Clone + Eq + Hash> PathArena<D> {
    /// An empty arena.
    pub fn new() -> Self {
        PathArena::default()
    }

    /// Number of table entries (live canonical chunks plus not-yet-swept
    /// dead ones).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Interns `id`, returning an equal identifier whose chunk chain runs
    /// through the arena's canonical nodes. Interning two equal identifiers
    /// (however they were built) yields pointer-identical chains, making
    /// subsequent comparisons between them O(1) at the shared prefix.
    pub fn intern(&mut self, id: &PosId<D>) -> PosId<D> {
        let mut parent: Option<Arc<PathNode<D>>> = None;
        for arc in id.chunk_arcs() {
            let key = ArenaKey {
                parent: addr(&parent),
                seg: arc.seg.clone(),
            };
            match self.table.get(&key).map(Weak::upgrade) {
                Some(Some(existing)) => {
                    parent = Some(existing);
                    continue;
                }
                Some(None) => {
                    // Dead entry (possibly an aliased recycled address):
                    // drop it and register afresh below.
                    self.table.remove(&key);
                }
                None => {}
            }
            // The cached aggregates depend only on the logical prefix and the
            // segment, both preserved by canonicalisation, so the original
            // node's values carry over.
            let node = if addr(&arc.parent) == addr(&parent) {
                arc
            } else {
                Arc::new(PathNode {
                    parent: parent.clone(),
                    seg: arc.seg.clone(),
                    depth: arc.depth,
                    dis_count: arc.dis_count,
                    shape: arc.shape,
                })
            };
            self.table.insert(key, Arc::downgrade(&node));
            parent = Some(node);
        }
        if self.table.len() >= self.purge_at {
            self.purge();
        }
        PosId::from_node(parent)
    }

    /// Drops table entries whose canonical chunk is no longer referenced by
    /// any identifier, and re-arms the growth-doubling sweep threshold.
    pub fn purge(&mut self) {
        self.table.retain(|_, weak| weak.strong_count() > 0);
        self.purge_at = PURGE_FLOOR.max(self.table.len() * 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::Sdis;
    use crate::path::{PathElem, Side};
    use crate::site::SiteId;

    fn s(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    fn sample(dis: u64) -> PosId<Sdis> {
        PosId::from_elems(vec![
            PathElem::plain(Side::Right),
            PathElem::plain(Side::Right),
            PathElem::mini(Side::Left, s(dis)),
        ])
    }

    #[test]
    fn interning_unifies_independent_chains() {
        let mut arena = PathArena::new();
        let a = arena.intern(&sample(1));
        let b = arena.intern(&sample(1));
        assert_eq!(a, b);
        // Equal interned ids share the tip node, so equality is pointer-fast.
        assert!(match (a.tip(), b.tip()) {
            (Some(x), Some(y)) => Arc::ptr_eq(x, y),
            _ => false,
        });
        // A sibling shares the canonical prefix chunk.
        let c = arena.intern(&sample(2));
        assert_ne!(a, c);
        assert_eq!(a.common_prefix_len(&c), 2);
    }

    #[test]
    fn interning_preserves_value_and_aggregates() {
        let mut arena = PathArena::new();
        let raw = sample(7).child(PathElem::plain(Side::Left));
        let interned = arena.intern(&raw);
        assert_eq!(raw, interned);
        assert_eq!(raw.depth(), interned.depth());
        assert_eq!(raw.dis_count(), interned.dis_count());
        assert_eq!(raw.elems(), interned.elems());
    }

    #[test]
    fn purge_drops_dead_entries() {
        let mut arena = PathArena::new();
        let kept = arena.intern(&sample(1));
        {
            let _dropped = arena.intern(&sample(2));
        }
        let before = arena.len();
        arena.purge();
        assert!(arena.len() < before);
        // The surviving id still canonicalises to the same chain.
        let again = arena.intern(&sample(1));
        assert!(match (kept.tip(), again.tip()) {
            (Some(x), Some(y)) => Arc::ptr_eq(x, y),
            _ => false,
        });
    }
}
