//! The workspace-wide binary wire codec.
//!
//! The paper's whole evaluation (§5) is about keeping identifier and
//! metadata overhead small; a wire format that ships operations as JSON
//! strings throws that care away. This module provides the compact,
//! versioned binary encoding every layer that moves or stores operations
//! builds on:
//!
//! * LEB128 **varints** for lengths, counters and epochs,
//! * fixed-width encodings for [`SiteId`]s and disambiguators
//!   ([`WireDis`], mirroring the byte budgets of §5: 6 bytes for SDIS,
//!   10 for UDIS),
//! * **bit-packed** tree paths (one bit per [`Side`], exactly the on-wire
//!   cost model of [`PosId::size_bits`]),
//! * **shared-prefix delta compression** for position identifiers
//!   ([`put_pos_id`]): consecutive operations in a batch encode only the
//!   path suffix that differs from the previous operation's path — the same
//!   insight the RLE disk format (§5.2) uses for marker runs, applied to the
//!   replication hot path. Sequential typing produces deeply shared
//!   prefixes, so a batched run of inserts costs a few bytes per operation.
//!
//! Layered protocols (the envelope and WAL-record encodings of
//! `treedoc-replication`) consume these primitives through [`WirePayload`],
//! which threads the previous payload of a batch through encode/decode so
//! the delta context never desynchronises between the two directions.
//!
//! Every decoder is **total**: malformed or truncated input yields `None`,
//! never a panic or an oversized allocation, so the codec can sit directly
//! behind an untrusted transport.

use crate::atom::Atom;
use crate::disambiguator::{Disambiguator, Sdis, Udis};
use crate::ops::Op;
use crate::path::{PosId, Side};
use crate::run::{spine_step, spine_successor};
use crate::site::{SiteId, SITE_ID_BYTES};

/// Version tag of the binary wire format. Bumped on any incompatible layout
/// change; decoders reject unknown versions instead of misparsing. (Version 1
/// is the implicit serde-JSON wire the workspace used before this codec;
/// version 3 added the run-step batch entries — see
/// [`WirePayload::encode_run_step`]; version 4 added the state-based
/// anti-entropy envelopes — sync digests, run transfers and snapshot
/// bootstrap chunks.)
pub const WIRE_VERSION: u8 = 4;

/// Oldest binary wire version current decoders still accept. Version 2
/// encodings are a strict subset of version 3 (they never set the run-step
/// entry flag), and version 4 only *adds* envelope tags, so one decoder
/// covers all three generations.
pub const WIRE_MIN_VERSION: u8 = 2;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint (7 bits per byte, high bit = continuation).
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing the cursor. `None` on truncated or
/// over-long input.
pub fn get_varint(input: &mut &[u8]) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first()?;
        *input = rest;
        // The 10th byte holds only bit 63: anything above would be shifted
        // out silently, mis-decoding malformed input into a *different*
        // value instead of rejecting it.
        if shift == 63 && byte & 0x7F > 1 {
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Appends one raw byte.
pub fn put_u8(out: &mut Vec<u8>, byte: u8) {
    out.push(byte);
}

/// Reads one raw byte.
pub fn get_u8(input: &mut &[u8]) -> Option<u8> {
    let (&byte, rest) = input.split_first()?;
    *input = rest;
    Some(byte)
}

/// Takes exactly `n` bytes off the cursor.
fn get_exact<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Some(head)
}

/// Appends a varint length prefix followed by the raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string.
pub fn get_bytes<'a>(input: &mut &'a [u8]) -> Option<&'a [u8]> {
    let len = get_varint(input)? as usize;
    get_exact(input, len)
}

/// Appends the 6 raw bytes of a site identifier.
pub fn put_site(out: &mut Vec<u8>, site: SiteId) {
    out.extend_from_slice(site.as_bytes());
}

/// Reads a site identifier.
pub fn get_site(input: &mut &[u8]) -> Option<SiteId> {
    let raw = get_exact(input, SITE_ID_BYTES)?;
    let mut bytes = [0u8; SITE_ID_BYTES];
    bytes.copy_from_slice(raw);
    Some(SiteId::from_bytes(bytes))
}

/// Packs `n` bits (produced by `bits`) LSB-first into `n.div_ceil(8)` bytes.
fn put_packed_bits(out: &mut Vec<u8>, n: usize, mut bits: impl Iterator<Item = bool>) {
    for _ in 0..n.div_ceil(8) {
        let mut byte = 0u8;
        for slot in 0..8 {
            if let Some(true) = bits.next() {
                byte |= 1 << slot;
            }
        }
        out.push(byte);
    }
}

/// Reads `n` LSB-first packed bits.
fn get_packed_bits(input: &mut &[u8], n: usize) -> Option<Vec<bool>> {
    let raw = get_exact(input, n.div_ceil(8))?;
    Some((0..n).map(|i| raw[i / 8] & (1 << (i % 8)) != 0).collect())
}

/// Appends a plain bit path (varint length + packed side bits), the encoding
/// used for flatten subtree selectors.
pub fn put_sides(out: &mut Vec<u8>, sides: &[Side]) {
    put_varint(out, sides.len() as u64);
    put_packed_bits(out, sides.len(), sides.iter().map(|s| s.bit() == 1));
}

/// Reads a plain bit path.
pub fn get_sides(input: &mut &[u8]) -> Option<Vec<Side>> {
    let n = get_varint(input)? as usize;
    let bits = get_packed_bits(input, n)?;
    Some(
        bits.into_iter()
            .map(|b| Side::from_bit(u8::from(b)))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Disambiguators and atoms
// ---------------------------------------------------------------------------

/// Fixed-width binary encoding of a disambiguator, matching the byte budgets
/// the paper's evaluation charges per identifier (§5: 6 bytes for SDIS, 10
/// for UDIS).
pub trait WireDis: Disambiguator {
    /// Appends exactly [`Disambiguator::ACCOUNTED_BYTES`] bytes.
    fn encode_dis(&self, out: &mut Vec<u8>);
    /// Reads the disambiguator back.
    fn decode_dis(input: &mut &[u8]) -> Option<Self>;
}

impl WireDis for Sdis {
    fn encode_dis(&self, out: &mut Vec<u8>) {
        put_site(out, self.site());
    }

    fn decode_dis(input: &mut &[u8]) -> Option<Self> {
        get_site(input).map(Sdis::new)
    }
}

impl WireDis for Udis {
    fn encode_dis(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.counter().to_le_bytes());
        put_site(out, self.site());
    }

    fn decode_dis(input: &mut &[u8]) -> Option<Self> {
        let raw = get_exact(input, 4)?;
        let counter = u32::from_le_bytes(raw.try_into().expect("4 bytes"));
        let site = get_site(input)?;
        Some(Udis::new(counter, site))
    }
}

/// An atom the binary codec can ship. Mirrors the [`Atom`] blanket impls so
/// `char`, `String`, `Vec<u8>` and the unsigned integers all work.
pub trait WireAtom: Atom {
    /// Appends the atom's binary form.
    fn encode_atom(&self, out: &mut Vec<u8>);
    /// Reads the atom back.
    fn decode_atom(input: &mut &[u8]) -> Option<Self>;
}

impl WireAtom for char {
    fn encode_atom(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(u32::from(*self)));
    }

    fn decode_atom(input: &mut &[u8]) -> Option<Self> {
        let code = u32::try_from(get_varint(input)?).ok()?;
        char::from_u32(code)
    }
}

impl WireAtom for String {
    fn encode_atom(&self, out: &mut Vec<u8>) {
        put_bytes(out, self.as_bytes());
    }

    fn decode_atom(input: &mut &[u8]) -> Option<Self> {
        let raw = get_bytes(input)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl WireAtom for Vec<u8> {
    fn encode_atom(&self, out: &mut Vec<u8>) {
        put_bytes(out, self);
    }

    fn decode_atom(input: &mut &[u8]) -> Option<Self> {
        get_bytes(input).map(<[u8]>::to_vec)
    }
}

impl WireAtom for u8 {
    fn encode_atom(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode_atom(input: &mut &[u8]) -> Option<Self> {
        get_u8(input)
    }
}

impl WireAtom for u32 {
    fn encode_atom(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }

    fn decode_atom(input: &mut &[u8]) -> Option<Self> {
        u32::try_from(get_varint(input)?).ok()
    }
}

impl WireAtom for u64 {
    fn encode_atom(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }

    fn decode_atom(input: &mut &[u8]) -> Option<Self> {
        get_varint(input)
    }
}

// ---------------------------------------------------------------------------
// Position identifiers: shared-prefix delta encoding
// ---------------------------------------------------------------------------

/// Appends `id` delta-encoded against `prev` (use [`PosId::root`] when there
/// is no previous identifier):
///
/// ```text
/// varint(shared prefix elems) · varint(suffix elems)
/// · packed suffix side bits · packed suffix has-dis bits · dis values
/// ```
///
/// The shared-prefix length comes from the chunked representation's
/// divergence walk ([`PosId::common_prefix_len`]): consecutive identifiers
/// in a batch share their spine chunks, so the scan skips them by pointer
/// identity instead of comparing byte-wise from the root.
pub fn put_pos_id<D: WireDis>(out: &mut Vec<u8>, id: &PosId<D>, prev: &PosId<D>) {
    let shared = id.common_prefix_len(prev);
    let suffix_len = id.depth() - shared;
    put_varint(out, shared as u64);
    put_varint(out, suffix_len as u64);
    let mut sides = Vec::with_capacity(suffix_len);
    let mut flags = Vec::with_capacity(suffix_len);
    id.visit_elems_from(shared, |s, d| {
        sides.push(s.bit() == 1);
        flags.push(d.is_some());
    });
    put_packed_bits(out, suffix_len, sides.into_iter());
    put_packed_bits(out, suffix_len, flags.into_iter());
    id.visit_elems_from(shared, |_, d| {
        if let Some(dis) = d {
            dis.encode_dis(out);
        }
    });
}

/// Reads an identifier delta-encoded against `prev`. The decoded identifier
/// shares `prev`'s chunk chain up to the shared-prefix boundary, so delta
/// decoding re-establishes structural sharing on the receiving replica.
pub fn get_pos_id<D: WireDis>(input: &mut &[u8], prev: &PosId<D>) -> Option<PosId<D>> {
    let shared = get_varint(input)? as usize;
    if shared > prev.depth() {
        return None;
    }
    let suffix_len = get_varint(input)? as usize;
    let sides = get_packed_bits(input, suffix_len)?;
    let has_dis = get_packed_bits(input, suffix_len)?;
    let mut id = prev.prefix(shared);
    for (side_bit, with_dis) in sides.into_iter().zip(has_dis) {
        let side = Side::from_bit(u8::from(side_bit));
        id = if with_dis {
            id.child_mini(side, D::decode_dis(input)?)
        } else {
            id.extend_plains(side, 1)
        };
    }
    Some(id)
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Appends an operation, its identifier delta-encoded against `prev` (the
/// identifier of the previous operation in the batch, or [`PosId::root`]).
pub fn put_op<A: WireAtom, D: WireDis>(out: &mut Vec<u8>, op: &Op<A, D>, prev: &PosId<D>) {
    match op {
        Op::Insert { id, atom } => {
            put_u8(out, OP_INSERT);
            put_pos_id(out, id, prev);
            atom.encode_atom(out);
        }
        Op::Delete { id } => {
            put_u8(out, OP_DELETE);
            put_pos_id(out, id, prev);
        }
    }
}

/// Reads an operation back, resolving the identifier delta against `prev`.
pub fn get_op<A: WireAtom, D: WireDis>(input: &mut &[u8], prev: &PosId<D>) -> Option<Op<A, D>> {
    match get_u8(input)? {
        OP_INSERT => {
            let id = get_pos_id(input, prev)?;
            let atom = A::decode_atom(input)?;
            Some(Op::Insert { id, atom })
        }
        OP_DELETE => Some(Op::Delete {
            id: get_pos_id(input, prev)?,
        }),
        _ => None,
    }
}

/// A payload the layered wire protocols (envelopes, WAL records) can ship.
///
/// `prev` is the previous payload of the same batch, giving delta encoders
/// their context; it is `None` for the first (or only) payload. Encode and
/// decode must thread the *same* `prev` for the round trip to hold.
///
/// The two `*_run_step` hooks expose **run coalescing** to the layered
/// codecs: when a payload is the sequential continuation of its predecessor
/// (for [`Op`], a [`spine_step`] insert — the shape every atom of a
/// coalesced run has), the batch encoder ships just the step (one side byte
/// plus the atom) instead of a full payload, and the decoder reconstructs
/// the identifier with [`spine_successor`]. The defaults opt out, so payload
/// types without a run structure are unaffected.
pub trait WirePayload: Sized {
    /// Appends the payload's binary form.
    fn encode_payload(&self, prev: Option<&Self>, out: &mut Vec<u8>);
    /// Reads the payload back.
    fn decode_payload(input: &mut &[u8], prev: Option<&Self>) -> Option<Self>;
    /// Appends the payload as a run continuation of `prev` and returns
    /// `true`, or returns `false` **without writing anything** when the
    /// payload does not continue `prev`.
    fn encode_run_step(&self, _prev: &Self, _out: &mut Vec<u8>) -> bool {
        false
    }
    /// Reads a run continuation back (inverse of
    /// [`encode_run_step`](Self::encode_run_step)).
    fn decode_run_step(_input: &mut &[u8], _prev: &Self) -> Option<Self> {
        None
    }
}

impl<A: WireAtom, D: WireDis> WirePayload for Op<A, D> {
    fn encode_payload(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let root = PosId::root();
        put_op(out, self, prev.map_or(&root, |p| p.id()));
    }

    fn decode_payload(input: &mut &[u8], prev: Option<&Self>) -> Option<Self> {
        let root = PosId::root();
        get_op(input, prev.map_or(&root, |p| p.id()))
    }

    fn encode_run_step(&self, prev: &Self, out: &mut Vec<u8>) -> bool {
        let (Op::Insert { id, atom }, Op::Insert { id: prev_id, .. }) = (self, prev) else {
            return false;
        };
        let Some(side) = spine_step(prev_id, id) else {
            return false;
        };
        put_u8(out, side.bit());
        atom.encode_atom(out);
        true
    }

    fn decode_run_step(input: &mut &[u8], prev: &Self) -> Option<Self> {
        let Op::Insert { id: prev_id, .. } = prev else {
            return None;
        };
        let byte = get_u8(input)?;
        if byte > 1 {
            return None;
        }
        let id = spine_successor(prev_id, Side::from_bit(byte))?;
        let atom = A::decode_atom(input)?;
        Some(Op::Insert { id, atom })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathElem;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn sid(n: u64) -> Sdis {
        Sdis::new(site(n))
    }

    fn pos(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(sid),
                })
                .collect(),
        )
    }

    #[test]
    fn varint_round_trips_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cursor = buf.as_slice();
            assert_eq!(get_varint(&mut cursor), Some(v));
            assert!(cursor.is_empty());
        }
        assert_eq!(get_varint(&mut [0x80u8].as_slice()), None, "truncated");
        let overlong = [0xFFu8; 10];
        assert_eq!(get_varint(&mut overlong.as_slice()), None, "over-long");
        // A 10th byte carrying bits beyond bit 63 must be rejected, not
        // silently truncated into a different value.
        let overflow = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7E];
        assert_eq!(get_varint(&mut overflow.as_slice()), None, "overflow bits");
    }

    #[test]
    fn sites_and_sides_round_trip() {
        let mut buf = Vec::new();
        put_site(&mut buf, site(77));
        put_sides(&mut buf, &[Side::Left, Side::Right, Side::Right]);
        put_sides(&mut buf, &[]);
        let mut cursor = buf.as_slice();
        assert_eq!(get_site(&mut cursor), Some(site(77)));
        assert_eq!(
            get_sides(&mut cursor),
            Some(vec![Side::Left, Side::Right, Side::Right])
        );
        assert_eq!(get_sides(&mut cursor), Some(Vec::new()));
        assert!(cursor.is_empty());
    }

    #[test]
    fn dis_encodings_match_the_accounted_sizes() {
        let mut buf = Vec::new();
        sid(3).encode_dis(&mut buf);
        assert_eq!(buf.len(), Sdis::ACCOUNTED_BYTES);
        let mut cursor = buf.as_slice();
        assert_eq!(Sdis::decode_dis(&mut cursor), Some(sid(3)));

        let mut buf = Vec::new();
        Udis::new(41, site(9)).encode_dis(&mut buf);
        assert_eq!(buf.len(), Udis::ACCOUNTED_BYTES);
        let mut cursor = buf.as_slice();
        assert_eq!(Udis::decode_dis(&mut cursor), Some(Udis::new(41, site(9))));
    }

    #[test]
    fn atoms_round_trip() {
        fn check<A: WireAtom>(atom: A) {
            let mut buf = Vec::new();
            atom.encode_atom(&mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(A::decode_atom(&mut cursor), Some(atom));
            assert!(cursor.is_empty());
        }
        check('é');
        check(String::from("a line of text"));
        check(String::new());
        check(vec![0u8, 0xFF, 7]);
        check(200u8);
        check(1_000_000u32);
        check(u64::MAX);
    }

    #[test]
    fn pos_id_round_trips_against_any_previous() {
        let ids = [
            pos(&[]),
            pos(&[(1, None), (0, Some(4))]),
            pos(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]),
            pos(&[(0, Some(2))]),
        ];
        for prev in &ids {
            for id in &ids {
                let mut buf = Vec::new();
                put_pos_id(&mut buf, id, prev);
                let mut cursor = buf.as_slice();
                assert_eq!(get_pos_id::<Sdis>(&mut cursor, prev).as_ref(), Some(id));
                assert!(cursor.is_empty());
            }
        }
    }

    #[test]
    fn shared_prefixes_shrink_the_encoding() {
        // A deep identifier next to a sibling differing only in the last
        // element: the delta form must cost a small constant, not the full
        // path (1 bit + 6-byte SDIS per element when standalone).
        let mut elems: Vec<(u8, Option<u64>)> = (0..40).map(|i| (i % 2, Some(3))).collect();
        let a = pos(&elems);
        elems.last_mut().unwrap().1 = Some(4);
        let b = pos(&elems);

        let mut standalone = Vec::new();
        put_pos_id(&mut standalone, &b, &PosId::root());
        let mut delta = Vec::new();
        put_pos_id(&mut delta, &b, &a);
        assert!(
            delta.len() < standalone.len() / 10,
            "delta {} vs standalone {}",
            delta.len(),
            standalone.len()
        );
        let mut cursor = delta.as_slice();
        assert_eq!(get_pos_id::<Sdis>(&mut cursor, &a), Some(b));
    }

    #[test]
    fn ops_round_trip_with_and_without_context() {
        let prev = pos(&[(1, None), (0, Some(4))]);
        let ops: Vec<Op<String, Sdis>> = vec![
            Op::Insert {
                id: pos(&[(1, None), (0, Some(4)), (1, Some(2))]),
                atom: "hello".into(),
            },
            Op::Delete {
                id: pos(&[(0, Some(7))]),
            },
        ];
        for op in &ops {
            for ctx in [&PosId::root(), &prev] {
                let mut buf = Vec::new();
                put_op(&mut buf, op, ctx);
                let mut cursor = buf.as_slice();
                assert_eq!(get_op::<String, Sdis>(&mut cursor, ctx).as_ref(), Some(op));
                assert!(cursor.is_empty());
            }
        }
    }

    #[test]
    fn run_steps_round_trip_and_decline_correctly() {
        use crate::disambiguator::{DisSource, SdisSource, UdisSource};
        use crate::site::SiteId;

        // A genuine spine continuation (the shape sequential typing stamps)
        // encodes as a step and decodes back to the identical op.
        fn check_step<D: WireDis>(mut source: impl DisSource<Dis = D>) {
            let d0 = source.next_dis();
            let prev: Op<String, D> = Op::Insert {
                id: PosId::from_elems(vec![PathElem::mini(Side::Right, d0.clone())]),
                atom: "a".into(),
            };
            for side in [Side::Left, Side::Right] {
                let next: Op<String, D> = Op::Insert {
                    id: crate::run::spine_successor(prev.id(), side).expect("successor"),
                    atom: "b".into(),
                };
                let mut buf = Vec::new();
                assert!(next.encode_run_step(&prev, &mut buf));
                assert!(buf.len() <= 1 + 2, "step must be tiny, got {}B", buf.len());
                let mut cursor = buf.as_slice();
                assert_eq!(
                    Op::decode_run_step(&mut cursor, &prev).as_ref(),
                    Some(&next)
                );
                assert!(cursor.is_empty());
            }
        }
        check_step(SdisSource::new(SiteId::from_u64(1)));
        check_step(UdisSource::new(SiteId::from_u64(1)));

        // Deletes, non-successor identifiers and sibling inserts are not run
        // steps: encode declines without writing a byte.
        let prev: Op<String, Sdis> = Op::Insert {
            id: pos(&[(1, Some(1))]),
            atom: "a".into(),
        };
        let non_steps: Vec<Op<String, Sdis>> = vec![
            Op::Delete {
                id: pos(&[(1, Some(1)), (0, Some(1))]),
            },
            Op::Insert {
                id: pos(&[(1, Some(2))]),
                atom: "b".into(),
            },
            Op::Insert {
                id: pos(&[(1, Some(1)), (0, Some(1))]),
                atom: "b".into(),
            },
        ];
        for op in &non_steps {
            let mut buf = Vec::new();
            assert!(!op.encode_run_step(&prev, &mut buf), "{op:?}");
            assert!(buf.is_empty(), "decliners must not write");
        }
        // A step byte above 1 is malformed, not a silent Side.
        let mut cursor = [7u8, 1, b'x'].as_slice();
        assert_eq!(
            Op::<String, Sdis>::decode_run_step(&mut cursor, &prev),
            None
        );
    }

    #[test]
    fn malformed_input_is_rejected_not_panicked() {
        // Truncated everywhere: every prefix of a valid op either decodes to
        // None or to a shorter valid value, never panics.
        let op: Op<String, Sdis> = Op::Insert {
            id: pos(&[(1, None), (0, Some(4))]),
            atom: "x".into(),
        };
        let mut buf = Vec::new();
        put_op(&mut buf, &op, &PosId::root());
        for cut in 0..buf.len() {
            let mut cursor = &buf[..cut];
            let _ = get_op::<String, Sdis>(&mut cursor, &PosId::root());
        }
        // A shared-prefix claim longer than the previous id is invalid.
        let mut buf = Vec::new();
        put_varint(&mut buf, 5); // shared = 5 against an empty prev
        put_varint(&mut buf, 0);
        let mut cursor = buf.as_slice();
        assert_eq!(get_pos_id::<Sdis>(&mut cursor, &PosId::root()), None);
        // An oversized suffix claim must not allocate; it reads as
        // truncation.
        let mut buf = Vec::new();
        put_varint(&mut buf, 0);
        put_varint(&mut buf, u64::MAX);
        let mut cursor = buf.as_slice();
        assert_eq!(get_pos_id::<Sdis>(&mut cursor, &PosId::root()), None);
        // Unknown op tag.
        let mut cursor = [9u8].as_slice();
        assert_eq!(get_op::<String, Sdis>(&mut cursor, &PosId::root()), None);
    }
}
