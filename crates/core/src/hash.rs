//! The single content-hashing layer shared by every crate in the workspace.
//!
//! Three consumers used to carry their own ad-hoc hashing — the durability
//! layer's WAL/snapshot checksums, the sim's convergence digests and (new)
//! the anti-entropy sync protocol. They now all sit on this module:
//!
//! * [`crc32`] — CRC-32 (IEEE 802.3 polynomial), guarding every WAL record
//!   against torn writes and bit rot. A mismatch on replay marks the end of
//!   the valid log prefix.
//! * [`content_hash64`] / [`Hasher64`] — FNV-1a 64-bit content hashing, in
//!   one-shot and streaming form. The streaming form exposes its running
//!   state ([`Hasher64::state`] / [`Hasher64::from_state`]) so callers that
//!   hash many values sharing a long prefix (the run store's spine cells) can
//!   snapshot the prefix once and branch per value in `O(1)`.
//! * [`ContentHash`] — the trait a value implements to feed itself into a
//!   [`Hasher64`] in a canonical, platform-independent byte order.
//! * [`combine_hashes`] — an *ordered* combiner folding child hashes into a
//!   parent hash (the merkle root over a snapshot's section hashes).
//! * [`DIGEST_BASE`] / [`digest_pow`] / [`digest_merge`] — the mergeable
//!   sequence-digest algebra the run store's incremental merkle digest is
//!   built on: `digest(c_0..c_{n-1}) = Σ h(c_i)·B^{n-1-i} (mod 2^64)`. The
//!   base `B` is odd, hence invertible mod `2^64`, so unequal single-cell
//!   substitutions always change the digest. Unlike a structural merkle
//!   tree the polynomial form is independent of how cells are grouped into
//!   runs and tree nodes — two converged replicas whose stores fragment
//!   differently still agree on every range digest.

use crate::site::SiteId;

/// The CRC-32 lookup table for the reflected IEEE polynomial `0xEDB88320`,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The base of the polynomial sequence digest: the FNV prime. Odd, hence a
/// unit of the ring `Z/2^64`, so multiplying a digest by a power of the base
/// never loses information.
pub const DIGEST_BASE: u64 = FNV_PRIME;

/// FNV-1a 64-bit content hash of `data`.
pub fn content_hash64(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Combines an ordered list of child hashes into a parent hash (the
/// merkle-style root over a snapshot's section hashes).
pub fn combine_hashes(children: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Hasher64::new();
    for child in children {
        h.write_u64(child);
    }
    h.state()
}

/// `DIGEST_BASE.pow(exp)` in wrapping (mod `2^64`) arithmetic, by square-and-
/// multiply — `O(log exp)`.
pub fn digest_pow(exp: u64) -> u64 {
    let mut base = DIGEST_BASE;
    let mut exp = exp;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        exp >>= 1;
    }
    acc
}

/// Concatenates two sequence digests: the digest of `left ++ right` given
/// `left`'s digest, `right`'s digest and `right`'s cell count. The identity
/// element is `(digest = 0, cells = 0)`.
pub fn digest_merge(left: u64, right: u64, right_cells: u64) -> u64 {
    left.wrapping_mul(digest_pow(right_cells))
        .wrapping_add(right)
}

/// A streaming FNV-1a 64-bit hasher whose running state can be snapshotted
/// and resumed, so hashes of many values sharing a common prefix cost the
/// prefix once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher64 {
    state: u64,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher64 {
    /// A fresh hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Hasher64 { state: FNV_OFFSET }
    }

    /// Resumes hashing from a snapshotted [`state`](Hasher64::state).
    pub const fn from_state(state: u64) -> Self {
        Hasher64 { state }
    }

    /// The current state — equal to the finished hash of everything written
    /// so far, and resumable via [`Hasher64::from_state`].
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u64::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a byte slice.
    pub fn write(&mut self, data: &[u8]) {
        for &byte in data {
            self.write_u8(byte);
        }
    }

    /// Feeds a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// A value with a canonical, platform-independent contribution to a content
/// hash. Implemented by every [`Atom`](crate::Atom) and
/// [`Disambiguator`](crate::Disambiguator) type so the run store can digest
/// cells generically.
pub trait ContentHash {
    /// Feeds the value's canonical bytes into `hasher`.
    fn feed(&self, hasher: &mut Hasher64);
}

impl ContentHash for u8 {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write_u8(*self);
    }
}

impl ContentHash for u32 {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write_u32(*self);
    }
}

impl ContentHash for u64 {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write_u64(*self);
    }
}

impl ContentHash for char {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write_u32(*self as u32);
    }
}

impl ContentHash for str {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write_u64(self.len() as u64);
        hasher.write(self.as_bytes());
    }
}

impl ContentHash for String {
    fn feed(&self, hasher: &mut Hasher64) {
        self.as_str().feed(hasher);
    }
}

impl ContentHash for [u8] {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write_u64(self.len() as u64);
        hasher.write(self);
    }
}

impl ContentHash for Vec<u8> {
    fn feed(&self, hasher: &mut Hasher64) {
        self.as_slice().feed(hasher);
    }
}

impl ContentHash for SiteId {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write(self.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(content_hash64(b""), FNV_OFFSET);
        assert_eq!(content_hash64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = content_hash64(b"left");
        let b = content_hash64(b"right");
        assert_ne!(combine_hashes([a, b]), combine_hashes([b, a]));
        assert_eq!(combine_hashes([a, b]), combine_hashes([a, b]));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"incremental merkle digest";
        let mut h = Hasher64::new();
        h.write(&data[..7]);
        let mut resumed = Hasher64::from_state(h.state());
        resumed.write(&data[7..]);
        assert_eq!(resumed.state(), content_hash64(data));
    }

    #[test]
    fn digest_algebra_is_associative() {
        // digest(abc) assembled as (a·b)·c and a·(b·c) must agree.
        let (a, b, c) = (
            content_hash64(b"a"),
            content_hash64(b"b"),
            content_hash64(b"c"),
        );
        let left = digest_merge(digest_merge(a, b, 1), c, 1);
        let right = digest_merge(a, digest_merge(b, c, 1), 2);
        assert_eq!(left, right);
        // And the identity really is the identity on both sides.
        assert_eq!(digest_merge(0, left, 3), left);
        assert_eq!(digest_merge(left, 0, 0), left);
    }

    #[test]
    fn digest_pow_matches_repeated_multiplication() {
        let mut acc = 1u64;
        for k in 0..40u64 {
            assert_eq!(digest_pow(k), acc);
            acc = acc.wrapping_mul(DIGEST_BASE);
        }
    }

    #[test]
    fn content_hash_is_length_prefixed_for_variable_types() {
        // "ab" + "c" must not collide with "a" + "bc".
        let h = |parts: &[&str]| {
            let mut h = Hasher64::new();
            for p in parts {
                p.feed(&mut h);
            }
            h.state()
        };
        assert_ne!(h(&["ab", "c"]), h(&["a", "bc"]));
    }
}
