//! The extended binary tree holding the document (§3).
//!
//! [`Tree`] stores atoms in [`MajorNode`]s / [`MiniNode`]s and offers the
//! operations the document layer needs:
//!
//! * path-addressed reads, inserts and deletes (replay of remote operations),
//! * index-addressed lookups (finding the identifier of the *i*-th live atom
//!   and its neighbour slots, used when a local edit allocates a fresh
//!   identifier),
//! * infix traversal of every occupied slot (statistics, serialisation),
//! * subtree extraction / replacement (the `explode` / `flatten` structural
//!   clean-up of §4.2),
//! * the cold-subtree search used by the flatten heuristic of §5.1.
//!
//! The deletion policy follows the disambiguator design (§3.3): with
//! [`Udis`](crate::Udis) deleted nodes are discarded eagerly (leaves removed,
//! non-leaves kept as ghosts until their subtree empties); with
//! [`Sdis`](crate::Sdis) deleted nodes become tombstones.

use serde::{Deserialize, Serialize};

use crate::atom::Atom;
use crate::disambiguator::Disambiguator;
use crate::error::{Error, Result};
use crate::node::{Content, MajorNode, MiniNode};
use crate::path::{PathElem, PosId, Side};

/// A read-only view of one occupied slot, passed to [`Tree::for_each_slot`].
#[derive(Debug)]
pub struct SlotView<'a, A, D> {
    /// Branch bits from the root down to this slot's position.
    pub bits: &'a [Side],
    /// The slot's own disambiguator (`None` for plain slots).
    pub dis: Option<&'a D>,
    /// Number of disambiguators on the path to this slot, *including* its
    /// own: the identifier of this slot costs
    /// `bits.len() + dis_count * DIS_BYTES * 8` bits.
    pub dis_count: usize,
    /// The slot content.
    pub content: &'a Content<A>,
}

impl<A, D: Disambiguator> SlotView<'_, A, D> {
    /// Size in bits of this slot's position identifier (Table 1 "PosID").
    pub fn pos_id_bits(&self) -> usize {
        self.bits.len() + self.dis_count * D::ACCOUNTED_BYTES * 8
    }
}

/// The extended binary tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree<A, D> {
    root: MajorNode<A, D>,
}

impl<A: Atom, D: Disambiguator> Default for Tree<A, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Atom, D: Disambiguator> Tree<A, D> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Tree {
            root: MajorNode::empty(),
        }
    }

    /// Builds a tree directly from a prepared root node (used by `explode`).
    pub(crate) fn from_root(mut root: MajorNode<A, D>) -> Self {
        recount_deep(&mut root);
        Tree { root }
    }

    /// The root major node.
    pub fn root(&self) -> &MajorNode<A, D> {
        &self.root
    }

    /// Number of live atoms.
    pub fn live_len(&self) -> usize {
        self.root.live_count()
    }

    /// Number of occupied slots (live atoms + tombstones + ghosts).
    pub fn node_count(&self) -> usize {
        self.root.total_count()
    }

    /// `true` when the document holds no live atom.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// Height of the tree in levels (0 for a completely empty tree).
    pub fn height(&self) -> usize {
        if self.root.is_empty_structure() {
            0
        } else {
            self.root.height()
        }
    }

    /// Estimated heap footprint of the index structure itself (node structs
    /// and child boxes), excluding atom content bytes. This is the measured
    /// counterpart of [`MemoryModel`](crate::MemoryModel): one boxed
    /// [`MajorNode`] per allocation plus the mini-node vector elements.
    pub fn index_bytes(&self) -> usize {
        let major = std::mem::size_of::<MajorNode<A, D>>();
        let mini = std::mem::size_of::<MiniNode<A, D>>();
        let mut bytes = major; // the inline root
        let mut stack: Vec<&MajorNode<A, D>> = vec![&self.root];
        while let Some(node) = stack.pop() {
            bytes += node.minis.len() * mini;
            let children = node
                .minis
                .iter()
                .flat_map(|m| [m.left.as_deref(), m.right.as_deref()])
                .chain([node.left.as_deref(), node.right.as_deref()]);
            for child in children.flatten() {
                bytes += major;
                stack.push(child);
            }
        }
        bytes
    }

    // ------------------------------------------------------------------
    // Path-addressed access
    // ------------------------------------------------------------------

    /// Returns the content of the slot identified by `id`, if the slot
    /// exists.
    pub fn get(&self, id: &PosId<D>) -> Option<&Content<A>> {
        enum Ctx<'a, A, D> {
            Major(&'a MajorNode<A, D>),
            Mini(&'a MiniNode<A, D>),
        }
        let mut ctx = Ctx::Major(&self.root);
        for elem in id.elems() {
            let child = match ctx {
                Ctx::Major(m) => m.child(elem.side)?,
                Ctx::Mini(m) => m.child(elem.side)?,
            };
            ctx = match &elem.dis {
                None => Ctx::Major(child),
                Some(d) => Ctx::Mini(child.find_mini(d)?),
            };
        }
        Some(match ctx {
            Ctx::Major(m) => m.plain(),
            Ctx::Mini(m) => m.content(),
        })
    }

    /// Returns the live atom identified by `id`, if any.
    pub fn get_atom(&self, id: &PosId<D>) -> Option<&A> {
        self.get(id).and_then(Content::live)
    }

    /// Inserts `atom` at identifier `id`, creating any missing ancestors as
    /// ghost nodes (this happens when replaying an insert whose ancestors
    /// were concurrently discarded under UDIS, §3.3.1).
    ///
    /// Fails with [`Error::DuplicatePosId`] if a *live* atom already occupies
    /// the slot — concurrent inserts always carry distinct identifiers, so a
    /// collision indicates a broken delivery layer.
    pub fn insert(&mut self, id: &PosId<D>, atom: A, rev: u64) -> Result<()> {
        self.root.hot_rev = self.root.hot_rev.max(rev);
        if id.is_root() {
            if self.root.plain.is_live() {
                return Err(Error::DuplicatePosId { id: id.repr() });
            }
            self.root.plain = Content::Live(atom);
            self.root.recount();
            return Ok(());
        }
        let elems = id.elems();
        let result = insert_below(HolderMut::Major(&mut self.root), &elems, atom, rev, id);
        self.root.recount();
        result
    }

    /// Deletes the atom identified by `id`.
    ///
    /// Deletion is idempotent and tolerant of already-discarded nodes: if the
    /// slot does not exist or holds no live atom, the call is a no-op and
    /// returns `Ok(None)` — this is what makes concurrent deletes of the same
    /// atom commute (§2.2).
    pub fn delete(&mut self, id: &PosId<D>, rev: u64) -> Result<Option<A>> {
        self.root.hot_rev = self.root.hot_rev.max(rev);
        if id.is_root() {
            let removed = self.root.plain.take_live(if D::DISCARD_ON_DELETE {
                Content::Absent
            } else {
                Content::Tombstone
            });
            self.root.recount();
            return Ok(removed);
        }
        let elems = id.elems();
        let removed = delete_below(HolderMut::Major(&mut self.root), &elems, rev);
        self.root.recount();
        if D::DISCARD_ON_DELETE {
            self.root.prune();
            self.root.recount();
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Index-addressed access
    // ------------------------------------------------------------------

    /// Identifier of the `index`-th live atom (0-based), if it exists.
    pub fn id_of_live_index(&self, index: usize) -> Option<PosId<D>> {
        if index >= self.live_len() {
            return None;
        }
        let mut path: Vec<PathElem<D>> = Vec::new();
        locate_live_major(&self.root, &mut path, index);
        Some(PosId::from_elems(path))
    }

    /// The live atom at `index`, if it exists.
    ///
    /// Resolved in a **single** descent guided by the cached live counters —
    /// unlike [`id_of_live_index`](Self::id_of_live_index) followed by
    /// [`get_atom`](Self::get_atom), which walks the tree twice and clones
    /// every disambiguator on the path along the way.
    pub fn atom_at(&self, index: usize) -> Option<&A> {
        if index >= self.live_len() {
            return None;
        }
        Some(live_atom_at(&self.root, index))
    }

    /// Identifier of the first occupied slot (live, tombstone or ghost) in
    /// infix order.
    pub fn first_slot(&self) -> Option<PosId<D>> {
        if self.root.total_count() == 0 {
            return None;
        }
        first_slot_in_major(&self.root, &PosId::root())
    }

    /// Identifier of the occupied slot that immediately follows `id` in infix
    /// order, considering every slot (live, tombstone or ghost).
    ///
    /// The pair `(id, successor(id))` is adjacent in the *full* tree, which
    /// is exactly the precondition Algorithm 1 needs when allocating a fresh
    /// identifier between two atoms (§3.2) without ever colliding with a
    /// tombstone.
    pub fn successor_slot(&self, id: &PosId<D>) -> Option<PosId<D>> {
        let elems = id.elems();
        succ_in_major(&self.root, &PosId::root(), &elems)
    }

    /// All live atoms in document order.
    pub fn to_vec(&self) -> Vec<A> {
        let mut out = Vec::with_capacity(self.live_len());
        self.for_each_slot(|slot| {
            if let Content::Live(a) = slot.content {
                out.push(a.clone());
            }
        });
        out
    }

    /// Live atoms paired with their identifiers, in document order.
    pub fn to_identified_vec(&self) -> Vec<(PosId<D>, A)> {
        let mut out = Vec::with_capacity(self.live_len());
        collect_identified(&self.root, &PosId::root(), &mut out);
        out
    }

    /// Visits every occupied slot in infix (document) order.
    ///
    /// The [`SlotView`] passed to the callback borrows traversal-local state,
    /// so the callback must copy out whatever it wants to keep.
    pub fn for_each_slot(&self, mut f: impl for<'b> FnMut(SlotView<'b, A, D>)) {
        let mut bits: Vec<Side> = Vec::new();
        visit_major(&self.root, &mut bits, 0, &mut f);
    }

    // ------------------------------------------------------------------
    // Subtrees (flatten / explode support)
    // ------------------------------------------------------------------

    /// The major node rooted at the given plain bit path, if it exists.
    pub fn subtree(&self, bits: &[Side]) -> Option<&MajorNode<A, D>> {
        let mut node = &self.root;
        for &side in bits {
            node = node.child(side)?;
        }
        Some(node)
    }

    /// Live atoms of the subtree rooted at the given plain bit path, in
    /// document order.
    pub fn subtree_live_atoms(&self, bits: &[Side]) -> Result<Vec<A>> {
        let node = self.subtree(bits).ok_or_else(|| Error::NoSuchSubtree {
            bits: bits.iter().map(|s| s.bit()).collect(),
        })?;
        let mut out = Vec::with_capacity(node.live_count());
        let mut scratch: Vec<Side> = bits.to_vec();
        let mut collect = |slot: SlotView<'_, A, D>| {
            if let Content::Live(a) = slot.content {
                out.push(a.clone());
            }
        };
        visit_major(node, &mut scratch, 0, &mut collect);
        Ok(out)
    }

    /// Replaces the subtree rooted at the given plain bit path with `new`,
    /// recomputing the cached counters of every ancestor.
    pub fn replace_subtree(&mut self, bits: &[Side], new: MajorNode<A, D>) -> Result<()> {
        fn rec<A: Atom, D: Disambiguator>(
            node: &mut MajorNode<A, D>,
            bits: &[Side],
            new: MajorNode<A, D>,
        ) -> Result<()> {
            match bits.split_first() {
                None => {
                    *node = new;
                    Ok(())
                }
                Some((&side, rest)) => {
                    let child = node.child_mut(side).ok_or_else(|| Error::NoSuchSubtree {
                        bits: bits.iter().map(|s| s.bit()).collect(),
                    })?;
                    rec(child, rest, new)?;
                    node.recount();
                    Ok(())
                }
            }
        }
        let mut new = new;
        recount_deep(&mut new);
        rec(&mut self.root, bits, new)?;
        self.root.recount();
        Ok(())
    }

    /// Finds maximal subtrees (rooted at plain positions) whose last
    /// modification is at or before `threshold_rev` and which hold at least
    /// `min_live` live atoms. Used by the cold-region flatten heuristic of
    /// §5.1.
    pub fn find_cold_subtrees(&self, threshold_rev: u64, min_live: usize) -> Vec<Vec<Side>> {
        fn rec<A, D: Disambiguator>(
            node: &MajorNode<A, D>,
            bits: &mut Vec<Side>,
            threshold: u64,
            min_live: usize,
            out: &mut Vec<Vec<Side>>,
        ) {
            if node.live == 0 && node.total == 0 {
                return;
            }
            if node.hot_rev <= threshold && node.live >= min_live {
                out.push(bits.clone());
                return;
            }
            for side in [Side::Left, Side::Right] {
                if let Some(child) = node.child(side) {
                    bits.push(side);
                    rec(child, bits, threshold, min_live, out);
                    bits.pop();
                }
            }
        }
        let mut out = Vec::new();
        let mut bits = Vec::new();
        rec(&self.root, &mut bits, threshold_rev, min_live, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Restoration (deserialisation support)
    // ------------------------------------------------------------------

    /// Sets the slot identified by `id` to `content`, creating any missing
    /// structure. Unlike [`insert`](Self::insert) this can restore tombstones
    /// and ghost nodes, which is what a storage layer needs when loading a
    /// persisted replica; it does **not** update the cached counters — call
    /// [`rebuild_counts`](Self::rebuild_counts) once after the last slot has
    /// been restored.
    pub fn restore_slot(&mut self, id: &PosId<D>, content: Content<A>) {
        enum CtxMut<'a, A, D> {
            Major(&'a mut MajorNode<A, D>),
            Mini(&'a mut MiniNode<A, D>),
        }
        let mut ctx = CtxMut::Major(&mut self.root);
        for elem in id.elems() {
            let child = match ctx {
                CtxMut::Major(m) => m.child_or_create(elem.side),
                CtxMut::Mini(m) => m.child_or_create(elem.side),
            };
            ctx = match &elem.dis {
                None => CtxMut::Major(child),
                Some(d) => CtxMut::Mini(child.find_mini_or_create(d)),
            };
        }
        match ctx {
            CtxMut::Major(m) => m.plain = content,
            CtxMut::Mini(m) => m.content = content,
        }
    }

    /// Recomputes every cached counter after a sequence of
    /// [`restore_slot`](Self::restore_slot) calls.
    pub fn rebuild_counts(&mut self) {
        recount_deep(&mut self.root);
    }

    /// Every occupied slot in infix order, with its full identifier, a clone
    /// of its content and the `hot_rev` of its enclosing major node. This is
    /// the exchange format between the per-atom tree and the run-coalesced
    /// store ([`crate::run::RunTree`]).
    pub fn collect_cells(&self) -> Vec<(PosId<D>, Content<A>, u64)> {
        let mut out = Vec::with_capacity(self.node_count());
        collect_cells_rec(&self.root, &PosId::root(), &mut out);
        out
    }

    /// Stamps `rev` into the `hot_rev` of every major node along the path to
    /// `id` (the same stamping an [`insert`](Self::insert) at `id` performs),
    /// without touching any slot. Used when materialising a per-atom tree
    /// from run storage so the cold-subtree heuristic still sees run-level
    /// recency.
    pub(crate) fn stamp_path(&mut self, id: &PosId<D>, rev: u64) {
        enum CtxMut<'a, A, D> {
            Major(&'a mut MajorNode<A, D>),
            Mini(&'a mut MiniNode<A, D>),
        }
        let mut ctx = CtxMut::Major(&mut self.root);
        for elem in id.elems() {
            let child = match ctx {
                CtxMut::Major(m) => {
                    m.hot_rev = m.hot_rev.max(rev);
                    match m.child_mut(elem.side) {
                        Some(c) => c,
                        None => return,
                    }
                }
                CtxMut::Mini(m) => match m.child_mut(elem.side) {
                    Some(c) => c,
                    None => return,
                },
            };
            ctx = match &elem.dis {
                None => CtxMut::Major(child),
                Some(d) => {
                    child.hot_rev = child.hot_rev.max(rev);
                    match child.find_mini_mut(d) {
                        Some(m) => CtxMut::Mini(m),
                        None => return,
                    }
                }
            };
        }
        if let CtxMut::Major(m) = ctx {
            m.hot_rev = m.hot_rev.max(rev);
        }
    }

    /// Asserts internal invariants; used by tests and debug builds.
    ///
    /// Checks that cached counters match a full recount, that mini-nodes are
    /// sorted by disambiguator, and that the root major node carries no
    /// mini-nodes (the root position has no addressing element, so it cannot
    /// hold disambiguated slots).
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.root.minis().is_empty() {
            return Err("root major node must not carry mini-nodes".to_string());
        }
        check_major(&self.root)
    }
}

// ----------------------------------------------------------------------
// Internal recursion helpers
// ----------------------------------------------------------------------

/// Mutable handle on a node that owns child major nodes — either a major
/// node (plain children) or a mini-node (its private children).
enum HolderMut<'a, A, D> {
    Major(&'a mut MajorNode<A, D>),
    Mini(&'a mut MiniNode<A, D>),
}

impl<'a, A: Atom, D: Disambiguator> HolderMut<'a, A, D> {
    fn child_or_create(self, side: Side) -> &'a mut MajorNode<A, D> {
        match self {
            HolderMut::Major(m) => m.child_or_create(side),
            HolderMut::Mini(m) => m.child_or_create(side),
        }
    }

    fn child_mut(self, side: Side) -> Option<&'a mut MajorNode<A, D>> {
        match self {
            HolderMut::Major(m) => m.child_mut(side),
            HolderMut::Mini(m) => m.child_mut(side),
        }
    }
}

/// Recursive insert: `elems` is non-empty and descends from `parent`.
fn insert_below<A: Atom, D: Disambiguator>(
    parent: HolderMut<'_, A, D>,
    elems: &[PathElem<D>],
    atom: A,
    rev: u64,
    full_id: &PosId<D>,
) -> Result<()> {
    let (elem, rest) = elems
        .split_first()
        .expect("insert_below requires a non-empty path");
    let child = parent.child_or_create(elem.side);
    child.hot_rev = child.hot_rev.max(rev);
    let result = match &elem.dis {
        None => {
            if rest.is_empty() {
                if child.plain.is_live() {
                    Err(Error::DuplicatePosId { id: full_id.repr() })
                } else {
                    child.plain = Content::Live(atom);
                    Ok(())
                }
            } else {
                insert_below(HolderMut::Major(&mut *child), rest, atom, rev, full_id)
            }
        }
        Some(dis) => {
            let mini = child.find_mini_or_create(dis);
            let r = if rest.is_empty() {
                if mini.content.is_live() {
                    Err(Error::DuplicatePosId { id: full_id.repr() })
                } else {
                    mini.content = Content::Live(atom);
                    Ok(())
                }
            } else {
                insert_below(HolderMut::Mini(&mut *mini), rest, atom, rev, full_id)
            };
            mini.recount();
            r
        }
    };
    child.recount();
    result
}

/// Recursive delete: `elems` is non-empty and descends from `parent`.
/// Returns the removed atom if the slot held a live one.
fn delete_below<A: Atom, D: Disambiguator>(
    parent: HolderMut<'_, A, D>,
    elems: &[PathElem<D>],
    rev: u64,
) -> Option<A> {
    let (elem, rest) = elems
        .split_first()
        .expect("delete_below requires a non-empty path");
    let child = parent.child_mut(elem.side)?;
    child.hot_rev = child.hot_rev.max(rev);
    let removed = match &elem.dis {
        None => {
            if rest.is_empty() {
                child.plain.take_live(if D::DISCARD_ON_DELETE {
                    Content::Absent
                } else {
                    Content::Tombstone
                })
            } else {
                delete_below(HolderMut::Major(&mut *child), rest, rev)
            }
        }
        Some(dis) => {
            let mini = child.find_mini_mut(dis)?;
            let removed = if rest.is_empty() {
                mini.content.take_live(if D::DISCARD_ON_DELETE {
                    Content::Ghost
                } else {
                    Content::Tombstone
                })
            } else {
                delete_below(HolderMut::Mini(&mut *mini), rest, rev)
            };
            mini.recount();
            if D::DISCARD_ON_DELETE {
                mini.prune_children();
                mini.recount();
                if !mini.content.is_live()
                    && !mini.content.is_tombstone()
                    && mini.left.is_none()
                    && mini.right.is_none()
                {
                    child.remove_mini(dis);
                }
            }
            removed
        }
    };
    child.recount();
    if D::DISCARD_ON_DELETE {
        child.prune();
        child.recount();
    }
    removed
}

/// Recomputes every cached counter in the subtree (used after building trees
/// wholesale, e.g. in `explode`).
pub(crate) fn recount_deep<A: Atom, D: Disambiguator>(node: &mut MajorNode<A, D>) {
    for side in [Side::Left, Side::Right] {
        if let Some(child) = node.child_mut(side) {
            recount_deep(child);
        }
    }
    for mini in &mut node.minis {
        for child in [mini.left.as_deref_mut(), mini.right.as_deref_mut()]
            .into_iter()
            .flatten()
        {
            recount_deep(child);
        }
        mini.recount();
    }
    node.recount();
}

fn check_major<A: Atom, D: Disambiguator>(node: &MajorNode<A, D>) -> Result<(), String> {
    let mut clone = node.clone();
    clone.recount();
    if clone.live != node.live || clone.total != node.total {
        return Err(format!(
            "major node counters stale: cached ({}, {}) vs actual ({}, {})",
            node.live, node.total, clone.live, clone.total
        ));
    }
    for pair in node.minis().windows(2) {
        if pair[0].dis() >= pair[1].dis() {
            return Err("mini-nodes out of order".to_string());
        }
    }
    for mini in node.minis() {
        let mut mclone = mini.clone();
        mclone.recount();
        if mclone.live != mini.live_count() || mclone.total != mini.total_count() {
            return Err("mini node counters stale".to_string());
        }
        for side in [Side::Left, Side::Right] {
            if let Some(child) = mini.child(side) {
                check_major(child)?;
            }
        }
    }
    for side in [Side::Left, Side::Right] {
        if let Some(child) = node.child(side) {
            check_major(child)?;
        }
    }
    Ok(())
}

// --- index lookup -------------------------------------------------------

/// Finds the `index`-th live atom in one loop down the tree, steered by the
/// cached live counters (no path built, no second descent, no disambiguator
/// clones). `index` must be `< node.live`.
fn live_atom_at<A, D: Disambiguator>(node: &MajorNode<A, D>, index: usize) -> &A {
    let mut node = node;
    let mut index = index;
    'descend: loop {
        debug_assert!(index < node.live);
        if let Some(left) = node.child(Side::Left) {
            if index < left.live {
                node = left;
                continue 'descend;
            }
            index -= left.live;
        }
        if node.plain.is_live() {
            if index == 0 {
                return node.plain.live().expect("liveness just checked");
            }
            index -= 1;
        }
        for mini in node.minis() {
            if index < mini.live_count() {
                // Descend into this mini-node's private namespace: its left
                // subtree, its own slot, then its right subtree.
                if let Some(left) = mini.child(Side::Left) {
                    if index < left.live {
                        node = left;
                        continue 'descend;
                    }
                    index -= left.live;
                }
                if mini.content().is_live() {
                    if index == 0 {
                        return mini.content().live().expect("liveness just checked");
                    }
                    index -= 1;
                }
                node = mini.child(Side::Right).expect("index within live count");
                continue 'descend;
            }
            index -= mini.live_count();
        }
        node = node.child(Side::Right).expect("index within live count");
    }
}

fn locate_live_major<A, D: Disambiguator + Clone>(
    node: &MajorNode<A, D>,
    path: &mut Vec<PathElem<D>>,
    mut index: usize,
) {
    debug_assert!(index < node.live);
    if let Some(left) = node.child(Side::Left) {
        if index < left.live {
            path.push(PathElem::plain(Side::Left));
            locate_live_major(left, path, index);
            return;
        }
        index -= left.live;
    }
    if node.plain.is_live() {
        if index == 0 {
            return; // the plain slot: path as accumulated
        }
        index -= 1;
    }
    for mini in &node.minis {
        if index < mini.live {
            // Select this mini: the element landing on this major node must
            // carry its disambiguator.
            let last = path
                .last_mut()
                .expect("root major node cannot hold mini-nodes");
            last.dis = Some(mini.dis.clone());
            locate_live_mini(mini, path, index);
            return;
        }
        index -= mini.live;
    }
    let right = node.child(Side::Right).expect("index within live count");
    path.push(PathElem::plain(Side::Right));
    locate_live_major(right, path, index);
}

fn locate_live_mini<A, D: Disambiguator + Clone>(
    node: &MiniNode<A, D>,
    path: &mut Vec<PathElem<D>>,
    mut index: usize,
) {
    debug_assert!(index < node.live);
    if let Some(left) = node.child(Side::Left) {
        if index < left.live {
            path.push(PathElem::plain(Side::Left));
            locate_live_major(left, path, index);
            return;
        }
        index -= left.live;
    }
    if node.content.is_live() {
        if index == 0 {
            return;
        }
        index -= 1;
    }
    let right = node.child(Side::Right).expect("index within live count");
    path.push(PathElem::plain(Side::Right));
    locate_live_major(right, path, index);
}

// --- first / successor slot ---------------------------------------------

/// Identifier of the mini-node `dis` of the major node reached by
/// `major_path` (whose last element is plain).
fn mini_id<D: Disambiguator>(major_path: &PosId<D>, dis: &D) -> PosId<D> {
    let side = major_path
        .last_side()
        .expect("the root major node cannot hold mini-nodes");
    let parent = major_path
        .parent()
        .expect("the root major node cannot hold mini-nodes");
    parent.child_mini(side, dis.clone())
}

fn first_slot_in_major<A, D: Disambiguator>(
    node: &MajorNode<A, D>,
    path: &PosId<D>,
) -> Option<PosId<D>> {
    if node.total == 0 {
        return None;
    }
    if let Some(left) = node.child(Side::Left) {
        if let Some(found) = first_slot_in_major(left, &path.child(PathElem::plain(Side::Left))) {
            return Some(found);
        }
    }
    if node.plain.is_present() {
        return Some(path.clone());
    }
    if let Some(found) = first_slot_in_minis_after(node, path, None) {
        return Some(found);
    }
    first_slot_in_child(node, path, Side::Right)
}

fn first_slot_in_mini<A, D: Disambiguator>(
    node: &MiniNode<A, D>,
    path: &PosId<D>,
) -> Option<PosId<D>> {
    if node.total == 0 {
        return None;
    }
    if let Some(left) = node.child(Side::Left) {
        if let Some(found) = first_slot_in_major(left, &path.child(PathElem::plain(Side::Left))) {
            return Some(found);
        }
    }
    if node.content.is_present() {
        return Some(path.clone());
    }
    node.child(Side::Right)
        .and_then(|right| first_slot_in_major(right, &path.child(PathElem::plain(Side::Right))))
}

/// First occupied slot among the mini-nodes of `node` whose disambiguator is
/// strictly greater than `after` (all of them when `after` is `None`),
/// followed by nothing — the caller chains the right subtree itself.
fn first_slot_in_minis_after<A, D: Disambiguator>(
    node: &MajorNode<A, D>,
    major_path: &PosId<D>,
    after: Option<&D>,
) -> Option<PosId<D>> {
    for mini in &node.minis {
        if let Some(a) = after {
            if mini.dis() <= a {
                continue;
            }
        }
        if let Some(found) = first_slot_in_mini(mini, &mini_id(major_path, mini.dis())) {
            return Some(found);
        }
    }
    None
}

fn first_slot_in_child<A, D: Disambiguator>(
    node: &MajorNode<A, D>,
    major_path: &PosId<D>,
    side: Side,
) -> Option<PosId<D>> {
    node.child(side)
        .and_then(|child| first_slot_in_major(child, &major_path.child(PathElem::plain(side))))
}

/// Smallest occupied slot strictly greater than the identifier
/// `path-to-node ++ rel`, restricted to the subtree of `node` (a major node
/// reached through its plain namespace).
fn succ_in_major<A, D: Disambiguator>(
    node: &MajorNode<A, D>,
    path: &PosId<D>,
    rel: &[PathElem<D>],
) -> Option<PosId<D>> {
    let Some((elem, rest)) = rel.split_first() else {
        // The bound is this major node's plain slot: the successor is the
        // first slot among the minis, then the right subtree.
        return first_slot_in_minis_after(node, path, None)
            .or_else(|| first_slot_in_child(node, path, Side::Right));
    };
    let child_path = path.child(PathElem::plain(elem.side));
    let within_child = node.child(elem.side).and_then(|child| match &elem.dis {
        None => succ_in_major(child, &child_path, rest),
        Some(dis) => {
            let within_mini = child
                .find_mini(dis)
                .and_then(|mini| succ_in_mini(mini, &mini_id(&child_path, dis), rest));
            within_mini
                .or_else(|| first_slot_in_minis_after(child, &child_path, Some(dis)))
                .or_else(|| first_slot_in_child(child, &child_path, Side::Right))
        }
    });
    within_child.or_else(|| match elem.side {
        // The bound lies in the left subtree: this node's plain slot, minis
        // and right subtree all follow it.
        Side::Left => {
            if node.plain.is_present() {
                Some(path.clone())
            } else {
                first_slot_in_minis_after(node, path, None)
                    .or_else(|| first_slot_in_child(node, path, Side::Right))
            }
        }
        Side::Right => None,
    })
}

/// Same as [`succ_in_major`] but for a bound inside a mini-node's namespace.
fn succ_in_mini<A, D: Disambiguator>(
    node: &MiniNode<A, D>,
    path: &PosId<D>,
    rel: &[PathElem<D>],
) -> Option<PosId<D>> {
    let Some((elem, rest)) = rel.split_first() else {
        // The bound is the mini-node itself: the successor is the first slot
        // of its right subtree.
        return node.child(Side::Right).and_then(|right| {
            first_slot_in_major(right, &path.child(PathElem::plain(Side::Right)))
        });
    };
    let child_path = path.child(PathElem::plain(elem.side));
    let within_child = node.child(elem.side).and_then(|child| match &elem.dis {
        None => succ_in_major(child, &child_path, rest),
        Some(dis) => {
            let within_mini = child
                .find_mini(dis)
                .and_then(|mini| succ_in_mini(mini, &mini_id(&child_path, dis), rest));
            within_mini
                .or_else(|| first_slot_in_minis_after(child, &child_path, Some(dis)))
                .or_else(|| first_slot_in_child(child, &child_path, Side::Right))
        }
    });
    within_child.or_else(|| match elem.side {
        Side::Left => {
            if node.content.is_present() {
                Some(path.clone())
            } else {
                node.child(Side::Right).and_then(|right| {
                    first_slot_in_major(right, &path.child(PathElem::plain(Side::Right)))
                })
            }
        }
        Side::Right => None,
    })
}

// --- traversal ------------------------------------------------------------

fn visit_major<A, D: Disambiguator>(
    node: &MajorNode<A, D>,
    bits: &mut Vec<Side>,
    dis_count: usize,
    f: &mut impl for<'b> FnMut(SlotView<'b, A, D>),
) {
    if let Some(left) = node.child(Side::Left) {
        bits.push(Side::Left);
        visit_major(left, bits, dis_count, f);
        bits.pop();
    }
    if node.plain.is_present() {
        f(SlotView {
            bits,
            dis: None,
            dis_count,
            content: &node.plain,
        });
    }
    for mini in &node.minis {
        if let Some(left) = mini.child(Side::Left) {
            bits.push(Side::Left);
            visit_major(left, bits, dis_count + 1, f);
            bits.pop();
        }
        if mini.content.is_present() {
            f(SlotView {
                bits,
                dis: Some(&mini.dis),
                dis_count: dis_count + 1,
                content: &mini.content,
            });
        }
        if let Some(right) = mini.child(Side::Right) {
            bits.push(Side::Right);
            visit_major(right, bits, dis_count + 1, f);
            bits.pop();
        }
    }
    if let Some(right) = node.child(Side::Right) {
        bits.push(Side::Right);
        visit_major(right, bits, dis_count, f);
        bits.pop();
    }
}

/// The identifier of mini-node `dis` at the major node reached by `path`.
/// The root major node holds no mini-nodes; should one appear there anyway,
/// the plain root path is returned unchanged (mirroring the descent logic,
/// which has nowhere else to file it).
fn mini_path_of<D: Disambiguator>(path: &PosId<D>, dis: &D) -> PosId<D> {
    match (path.parent(), path.last_side()) {
        (Some(parent), Some(side)) => parent.child_mini(side, dis.clone()),
        _ => path.clone(),
    }
}

fn collect_identified<A: Atom, D: Disambiguator>(
    node: &MajorNode<A, D>,
    path: &PosId<D>,
    out: &mut Vec<(PosId<D>, A)>,
) {
    if let Some(left) = node.child(Side::Left) {
        collect_identified(left, &path.extend_plains(Side::Left, 1), out);
    }
    if let Content::Live(a) = &node.plain {
        out.push((path.clone(), a.clone()));
    }
    for mini in &node.minis {
        let mini_path = mini_path_of(path, &mini.dis);
        if let Some(left) = mini.child(Side::Left) {
            collect_identified(left, &mini_path.extend_plains(Side::Left, 1), out);
        }
        if let Content::Live(a) = &mini.content {
            out.push((mini_path.clone(), a.clone()));
        }
        if let Some(right) = mini.child(Side::Right) {
            collect_identified(right, &mini_path.extend_plains(Side::Right, 1), out);
        }
    }
    if let Some(right) = node.child(Side::Right) {
        collect_identified(right, &path.extend_plains(Side::Right, 1), out);
    }
}

fn collect_cells_rec<A: Atom, D: Disambiguator>(
    node: &MajorNode<A, D>,
    path: &PosId<D>,
    out: &mut Vec<(PosId<D>, Content<A>, u64)>,
) {
    if let Some(left) = node.child(Side::Left) {
        collect_cells_rec(left, &path.extend_plains(Side::Left, 1), out);
    }
    if node.plain.is_present() {
        out.push((path.clone(), node.plain.clone(), node.hot_rev));
    }
    for mini in &node.minis {
        let mini_path = mini_path_of(path, &mini.dis);
        if let Some(left) = mini.child(Side::Left) {
            collect_cells_rec(left, &mini_path.extend_plains(Side::Left, 1), out);
        }
        if mini.content.is_present() {
            out.push((mini_path.clone(), mini.content.clone(), node.hot_rev));
        }
        if let Some(right) = mini.child(Side::Right) {
            collect_cells_rec(right, &mini_path.extend_plains(Side::Right, 1), out);
        }
    }
    if let Some(right) = node.child(Side::Right) {
        collect_cells_rec(right, &path.extend_plains(Side::Right, 1), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::{Sdis, Udis};
    use crate::site::SiteId;

    type STree = Tree<char, Sdis>;
    type UTree = Tree<char, Udis>;

    fn sd(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    fn ud(c: u32, n: u64) -> Udis {
        Udis::new(c, SiteId::from_u64(n))
    }

    fn sid(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(sd),
                })
                .collect(),
        )
    }

    #[test]
    fn empty_tree() {
        let t = STree::new();
        assert!(t.is_empty());
        assert_eq!(t.live_len(), 0);
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.height(), 0);
        assert_eq!(t.first_slot(), None);
        assert_eq!(t.id_of_live_index(0), None);
        assert!(t.to_vec().is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_read_by_path() {
        let mut t = STree::new();
        // Figure 1 layout: a[00] < b[0] < c[] < d[10] < e[1] < f[11].
        let ids = [
            (sid(&[(0, None), (0, None)]), 'a'),
            (sid(&[(0, None)]), 'b'),
            (sid(&[]), 'c'),
            (sid(&[(1, None), (0, None)]), 'd'),
            (sid(&[(1, None)]), 'e'),
            (sid(&[(1, None), (1, None)]), 'f'),
        ];
        for (id, ch) in &ids {
            t.insert(id, *ch, 1).unwrap();
        }
        assert_eq!(t.to_vec(), vec!['a', 'b', 'c', 'd', 'e', 'f']);
        assert_eq!(t.live_len(), 6);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.height(), 3);
        for (id, ch) in &ids {
            assert_eq!(t.get_atom(id), Some(ch));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut t = STree::new();
        let id = sid(&[(0, Some(1))]);
        t.insert(&id, 'x', 1).unwrap();
        assert!(matches!(
            t.insert(&id, 'y', 2),
            Err(Error::DuplicatePosId { .. })
        ));
    }

    #[test]
    fn insert_with_mini_nodes_orders_by_disambiguator() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, Some(4))]), 'd', 1).unwrap();
        // Two concurrent inserts between c and d land on the same position
        // with different disambiguators (Figure 3).
        t.insert(&sid(&[(1, None), (0, None), (0, Some(2))]), 'Y', 2)
            .unwrap();
        t.insert(&sid(&[(1, None), (0, None), (0, Some(1))]), 'W', 2)
            .unwrap();
        assert_eq!(t.to_vec(), vec!['c', 'W', 'Y', 'd']);
        // Insert between the mini-siblings (Figure 4).
        t.insert(
            &sid(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]),
            'X',
            3,
        )
        .unwrap();
        assert_eq!(t.to_vec(), vec!['c', 'W', 'X', 'Y', 'd']);
        // And after Y, as the plain right child of the shared major node.
        t.insert(
            &sid(&[(1, None), (0, None), (0, None), (1, Some(6))]),
            'Z',
            3,
        )
        .unwrap();
        assert_eq!(t.to_vec(), vec!['c', 'W', 'X', 'Y', 'Z', 'd']);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sdis_delete_leaves_tombstone() {
        let mut t = STree::new();
        let id = sid(&[(0, Some(1))]);
        t.insert(&id, 'x', 1).unwrap();
        assert_eq!(t.delete(&id, 2).unwrap(), Some('x'));
        assert_eq!(t.live_len(), 0);
        assert_eq!(t.node_count(), 1, "SDIS keeps a tombstone");
        assert!(t.get(&id).unwrap().is_tombstone());
        // Deleting again is a commutative no-op.
        assert_eq!(t.delete(&id, 3).unwrap(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn udis_delete_discards_leaf_nodes() {
        let mut t = UTree::new();
        let id = PosId::from_elems(vec![PathElem::mini(Side::Left, ud(0, 1))]);
        t.insert(&id, 'x', 1).unwrap();
        assert_eq!(t.delete(&id, 2).unwrap(), Some('x'));
        assert_eq!(
            t.node_count(),
            0,
            "UDIS discards deleted leaves immediately"
        );
        assert_eq!(t.get(&id), None);
        // Deleting a discarded node is still a no-op, not an error.
        assert_eq!(t.delete(&id, 3).unwrap(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn udis_delete_keeps_non_leaf_until_descendants_go() {
        let mut t = UTree::new();
        // The child hangs in the *mini-node's own* namespace (it was inserted
        // between mini-siblings), so the deleted mini-node must be kept as a
        // ghost until its subtree empties (§3.3.1).
        let parent = PosId::from_elems(vec![PathElem::mini(Side::Left, ud(0, 1))]);
        let child = PosId::from_elems(vec![
            PathElem::mini(Side::Left, ud(0, 1)),
            PathElem::mini(Side::Right, ud(1, 2)),
        ]);
        t.insert(&parent, 'p', 1).unwrap();
        t.insert(&child, 'c', 1).unwrap();
        t.delete(&parent, 2).unwrap();
        assert_eq!(t.live_len(), 1);
        assert_eq!(t.node_count(), 2, "ghost parent + live child");
        // Deleting the child lets the whole chain be discarded.
        t.delete(&child, 3).unwrap();
        assert_eq!(t.node_count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn udis_delete_discards_mini_whose_descendants_use_the_plain_namespace() {
        let mut t = UTree::new();
        // Here the "descendant" was inserted through the major node's plain
        // namespace; its position does not reference the deleted mini-node's
        // disambiguator, so the mini-node itself can be discarded right away
        // while the descendant stays reachable and ordered.
        let parent = PosId::from_elems(vec![PathElem::mini(Side::Left, ud(0, 1))]);
        let child = PosId::from_elems(vec![
            PathElem::plain(Side::Left),
            PathElem::mini(Side::Right, ud(1, 1)),
        ]);
        t.insert(&parent, 'p', 1).unwrap();
        t.insert(&child, 'c', 1).unwrap();
        t.delete(&parent, 2).unwrap();
        assert_eq!(t.to_vec(), vec!['c']);
        assert_eq!(t.node_count(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn udis_replay_recreates_discarded_ancestors() {
        let mut t = UTree::new();
        let parent = PosId::from_elems(vec![PathElem::mini(Side::Left, ud(0, 1))]);
        t.insert(&parent, 'p', 1).unwrap();
        t.delete(&parent, 2).unwrap();
        assert_eq!(t.node_count(), 0);
        // A concurrent replica generated a child of `parent` before learning
        // about the delete; replaying it must re-create the ancestor chain.
        let child = PosId::from_elems(vec![
            PathElem::mini(Side::Left, ud(0, 1)),
            PathElem::mini(Side::Right, ud(5, 2)),
        ]);
        t.insert(&child, 'c', 3).unwrap();
        assert_eq!(t.to_vec(), vec!['c']);
        assert!(t.node_count() >= 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn index_lookup_matches_traversal() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(0, Some(1))]), 'b', 1).unwrap();
        t.insert(&sid(&[(0, None), (0, Some(1))]), 'a', 1).unwrap();
        t.insert(&sid(&[(1, Some(2))]), 'e', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, Some(2))]), 'd', 1).unwrap();
        t.insert(&sid(&[(1, None), (1, Some(3))]), 'f', 1).unwrap();
        let content = t.to_vec();
        assert_eq!(content, vec!['a', 'b', 'c', 'd', 'e', 'f']);
        for (i, expected) in content.iter().enumerate() {
            let id = t.id_of_live_index(i).unwrap();
            assert_eq!(t.get_atom(&id), Some(expected), "index {i}");
            assert_eq!(t.atom_at(i), Some(expected));
        }
        assert_eq!(t.id_of_live_index(6), None);
    }

    #[test]
    fn index_lookup_skips_tombstones() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'b', 1).unwrap();
        t.insert(&sid(&[(0, Some(1))]), 'a', 1).unwrap();
        t.insert(&sid(&[(1, Some(1))]), 'c', 1).unwrap();
        t.delete(&sid(&[(0, Some(1))]), 2).unwrap();
        assert_eq!(t.to_vec(), vec!['b', 'c']);
        assert_eq!(t.atom_at(0), Some(&'b'));
        assert_eq!(t.atom_at(1), Some(&'c'));
        let id0 = t.id_of_live_index(0).unwrap();
        assert_eq!(id0, sid(&[]));
    }

    #[test]
    fn successor_walks_every_slot_in_order() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(0, Some(1))]), 'b', 1).unwrap();
        t.insert(&sid(&[(0, None), (0, Some(1))]), 'a', 1).unwrap();
        t.insert(&sid(&[(1, Some(2))]), 'e', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, Some(2))]), 'd', 1).unwrap();
        t.insert(&sid(&[(1, None), (1, Some(3))]), 'f', 1).unwrap();
        // Delete one atom: the tombstone must still be visited by the
        // successor relation (it occupies its identifier).
        t.delete(&sid(&[(1, None), (0, Some(2))]), 2).unwrap();

        let mut slots = Vec::new();
        let mut cursor = t.first_slot();
        while let Some(id) = cursor {
            cursor = t.successor_slot(&id);
            slots.push(id);
        }
        assert_eq!(slots.len(), t.node_count());
        for pair in slots.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{:?} should precede {:?}",
                pair[0],
                pair[1]
            );
        }
        // And it matches the traversal order.
        let mut visited = Vec::new();
        t.for_each_slot(|s| visited.push(s.bits.to_vec()));
        assert_eq!(visited.len(), slots.len());
        for (a, b) in visited.iter().zip(&slots) {
            assert_eq!(a.as_slice(), b.bits().collect::<Vec<_>>().as_slice());
        }
    }

    #[test]
    fn successor_of_mini_with_siblings() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, Some(4))]), 'd', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, None), (0, Some(1))]), 'W', 2)
            .unwrap();
        t.insert(&sid(&[(1, None), (0, None), (0, Some(2))]), 'Y', 2)
            .unwrap();
        t.insert(
            &sid(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]),
            'X',
            3,
        )
        .unwrap();
        // c W X Y d : successor of W is X (inside W's own right subtree),
        // successor of X is Y (the next mini-sibling), successor of Y is d.
        let w = sid(&[(1, None), (0, None), (0, Some(1))]);
        let x = sid(&[(1, None), (0, None), (0, Some(1)), (1, Some(5))]);
        let y = sid(&[(1, None), (0, None), (0, Some(2))]);
        let d = sid(&[(1, None), (0, Some(4))]);
        assert_eq!(t.successor_slot(&w), Some(x.clone()));
        assert_eq!(t.successor_slot(&x), Some(y.clone()));
        assert_eq!(t.successor_slot(&y), Some(d.clone()));
        assert_eq!(t.successor_slot(&d), None);
    }

    #[test]
    fn to_identified_vec_is_sorted_and_complete() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(0, Some(1))]), 'b', 1).unwrap();
        t.insert(&sid(&[(1, Some(2))]), 'e', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, Some(2))]), 'd', 1).unwrap();
        let pairs = t.to_identified_vec();
        assert_eq!(pairs.len(), 4);
        assert_eq!(
            pairs.iter().map(|(_, a)| *a).collect::<Vec<_>>(),
            vec!['b', 'c', 'd', 'e']
        );
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for (id, a) in &pairs {
            assert_eq!(t.get_atom(id), Some(a));
        }
    }

    #[test]
    fn subtree_extraction_and_replacement() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(1, Some(2))]), 'e', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, Some(2))]), 'd', 1).unwrap();
        t.insert(&sid(&[(1, None), (1, Some(3))]), 'f', 1).unwrap();
        let atoms = t.subtree_live_atoms(&[Side::Right]).unwrap();
        assert_eq!(atoms, vec!['d', 'e', 'f']);
        // Replace the right subtree with a canonical two-level tree.
        let mut new_root: MajorNode<char, Sdis> = MajorNode::with_plain_atom('E');
        new_root.child_or_create(Side::Left).plain = Content::Live('D');
        new_root.child_or_create(Side::Right).plain = Content::Live('F');
        t.replace_subtree(&[Side::Right], new_root).unwrap();
        assert_eq!(t.to_vec(), vec!['c', 'D', 'E', 'F']);
        t.check_invariants().unwrap();
        assert!(t.subtree_live_atoms(&[Side::Left, Side::Left]).is_err());
    }

    #[test]
    fn cold_subtree_detection() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(0, Some(1))]), 'a', 1).unwrap();
        t.insert(&sid(&[(1, Some(1))]), 'e', 1).unwrap();
        // Revision 5 touches only the right subtree.
        t.insert(&sid(&[(1, None), (0, Some(1))]), 'd', 5).unwrap();
        // With a threshold of 1 the left subtree is cold but the root and the
        // right subtree are hot.
        let cold = t.find_cold_subtrees(1, 1);
        assert_eq!(cold, vec![vec![Side::Left]]);
        // With a threshold of 5 everything is cold; the maximal subtree is
        // the root.
        let cold = t.find_cold_subtrees(5, 1);
        assert_eq!(cold, vec![Vec::<Side>::new()]);
    }

    #[test]
    fn slot_view_reports_identifier_cost() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'c', 1).unwrap();
        t.insert(&sid(&[(1, None), (0, Some(2))]), 'd', 1).unwrap();
        let mut sizes = Vec::new();
        t.for_each_slot(|s| sizes.push((s.bits.len(), s.dis_count, s.pos_id_bits())));
        // Root plain slot: 0 bits, no disambiguator. 'd': 2 bits + one SDIS.
        assert_eq!(sizes, vec![(0, 0, 0), (2, 1, 2 + 48)]);
    }

    #[test]
    fn root_plain_insert_and_delete() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'x', 1).unwrap();
        assert!(matches!(
            t.insert(&sid(&[]), 'y', 1),
            Err(Error::DuplicatePosId { .. })
        ));
        assert_eq!(t.delete(&sid(&[]), 2).unwrap(), Some('x'));
        assert_eq!(t.live_len(), 0);
        assert_eq!(t.node_count(), 1, "SDIS tombstone at the root");
    }

    #[test]
    fn deleting_unknown_path_is_noop() {
        let mut t = STree::new();
        t.insert(&sid(&[]), 'x', 1).unwrap();
        assert_eq!(t.delete(&sid(&[(1, None), (1, Some(9))]), 2).unwrap(), None);
        assert_eq!(t.live_len(), 1);
        t.check_invariants().unwrap();
    }
}
