//! Digit allocation strategies.
//!
//! When a gap exists between the neighbouring digits at some depth, Logoot
//! must pick a digit inside it. The choice does not affect correctness, only
//! how quickly the digit space is consumed (and therefore how soon extra
//! layers are needed). The Logoot paper's *boundary* strategy allocates close
//! to the left neighbour, leaving room for the common append-at-the-end
//! pattern; a uniformly random choice is also provided.

use rand::Rng;

use serde::{Deserialize, Serialize};

/// How to pick a digit inside an available gap `(low, high)` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationStrategy {
    /// Pick uniformly at random in the whole gap.
    Random,
    /// Pick within at most `boundary` of the left edge (the Logoot paper's
    /// strategy, good for mostly-sequential editing).
    Boundary(u32),
}

impl Default for AllocationStrategy {
    fn default() -> Self {
        // The Logoot paper uses a boundary of 1 000 000 for its evaluation;
        // any positive value works.
        AllocationStrategy::Boundary(1_000_000)
    }
}

impl AllocationStrategy {
    /// Picks a digit strictly between `low` and `high` (both exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `high <= low + 1` (no free digit exists); callers must check
    /// the gap first.
    pub fn pick(&self, low: u32, high: u32, rng: &mut impl Rng) -> u32 {
        assert!(high > low + 1, "no free digit between {low} and {high}");
        let span = high - low - 1;
        match self {
            AllocationStrategy::Random => low + 1 + rng.gen_range(0..span),
            AllocationStrategy::Boundary(boundary) => {
                let span = span.min((*boundary).max(1));
                low + 1 + rng.gen_range(0..span)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_stay_inside_the_gap() {
        let mut rng = StdRng::seed_from_u64(7);
        for strategy in [AllocationStrategy::Random, AllocationStrategy::Boundary(10)] {
            for _ in 0..200 {
                let d = strategy.pick(10, 1000, &mut rng);
                assert!(
                    d > 10 && d < 1000,
                    "{d} outside (10, 1000) for {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn boundary_stays_close_to_the_left_edge() {
        let mut rng = StdRng::seed_from_u64(7);
        let strategy = AllocationStrategy::Boundary(5);
        for _ in 0..100 {
            let d = strategy.pick(100, u32::MAX, &mut rng);
            assert!(d > 100 && d <= 105);
        }
    }

    #[test]
    fn minimal_gap_is_usable() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(AllocationStrategy::Random.pick(4, 6, &mut rng), 5);
    }

    #[test]
    #[should_panic(expected = "no free digit")]
    fn empty_gap_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        AllocationStrategy::Random.pick(4, 5, &mut rng);
    }

    #[test]
    fn default_is_the_paper_boundary() {
        assert_eq!(
            AllocationStrategy::default(),
            AllocationStrategy::Boundary(1_000_000)
        );
    }
}
