//! # logoot
//!
//! A from-scratch implementation of the **Logoot** sequence CRDT
//! (Weiss, Urso, Molli — ICDCS 2009), used by the Treedoc paper (§5.3) as the
//! baseline its identifier sizes are compared against.
//!
//! Logoot identifies every atom with a *position*: a list of fixed-size
//! unique components ordered lexicographically. To insert between two atoms
//! it allocates a free component value between the neighbouring positions if
//! one exists at some depth, otherwise it extends the left position with an
//! additional layer. Deleted atoms are removed immediately (no tombstones),
//! but — unlike Treedoc — Logoot never restructures, so identifiers only ever
//! grow.
//!
//! The component layout follows the comparison set-up of the Treedoc paper:
//! a 4-byte digit plus a 6-byte site identifier, i.e. 10 bytes per component
//! ("We use the same size for UDIS and Logoot unique identifiers (10
//! bytes)").
//!
//! ```
//! use logoot::{LogootDoc, AllocationStrategy};
//!
//! let mut left = LogootDoc::<char>::new(1);
//! let mut right = LogootDoc::<char>::new(2);
//! let ops: Vec<_> = "abc".chars().enumerate()
//!     .map(|(i, c)| left.local_insert(i, c).unwrap())
//!     .collect();
//! for op in &ops { right.apply(op); }
//! assert_eq!(left.to_vec(), right.to_vec());
//! # let _ = AllocationStrategy::Boundary(16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod position;
pub mod strategy;

pub use document::{LogootDoc, LogootOp, LogootStats};
pub use position::{Component, Position, COMPONENT_BYTES, MAX_DIGIT, MIN_DIGIT};
pub use strategy::AllocationStrategy;
