//! The Logoot document replica.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::position::{Component, Position, MAX_DIGIT, MIN_DIGIT};
use crate::strategy::AllocationStrategy;

/// An edit operation exchanged between Logoot replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogootOp<A> {
    /// Insert `atom` at the freshly allocated `position`.
    Insert {
        /// The new position identifier.
        position: Position,
        /// The inserted atom.
        atom: A,
    },
    /// Remove the atom at `position`.
    Delete {
        /// The position of the atom to remove.
        position: Position,
    },
}

impl<A> LogootOp<A> {
    /// The position the operation refers to.
    pub fn position(&self) -> &Position {
        match self {
            LogootOp::Insert { position, .. } | LogootOp::Delete { position } => position,
        }
    }
}

/// Identifier-size statistics of a Logoot replica (the quantities compared
/// with Treedoc in Table 5 of the Treedoc paper).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LogootStats {
    /// Number of live atoms.
    pub atoms: usize,
    /// Sum of identifier sizes, in bytes.
    pub total_id_bytes: usize,
    /// Largest identifier, in bytes.
    pub max_id_bytes: usize,
    /// Sum of identifier depths (components).
    pub total_components: usize,
}

impl LogootStats {
    /// Average identifier size in bytes.
    pub fn avg_id_bytes(&self) -> f64 {
        if self.atoms == 0 {
            0.0
        } else {
            self.total_id_bytes as f64 / self.atoms as f64
        }
    }

    /// Average identifier size in bits (for direct comparison with Treedoc's
    /// PosID columns).
    pub fn avg_id_bits(&self) -> f64 {
        self.avg_id_bytes() * 8.0
    }
}

/// One replica of a Logoot-managed sequence.
///
/// Atoms are kept in a sorted list of `(Position, atom)` pairs; deletes
/// remove entries immediately (Logoot does not need tombstones because every
/// position is globally unique and never reused).
#[derive(Debug, Clone)]
pub struct LogootDoc<A> {
    site: u64,
    entries: Vec<(Position, A)>,
    strategy: AllocationStrategy,
    /// Largest digit value the allocator hands out per level (the per-level
    /// base). Smaller bases exhaust a level sooner and force extra layers —
    /// the original Logoot design uses a much smaller per-level space than a
    /// full 32-bit word, which is what makes its identifiers grow.
    digit_span: u32,
    rng: StdRng,
}

impl<A: Clone> LogootDoc<A> {
    /// Creates an empty replica for `site` (must be non-zero; zero is
    /// reserved for the virtual document boundaries).
    pub fn new(site: u64) -> Self {
        Self::with_strategy(site, AllocationStrategy::default())
    }

    /// Creates an empty replica with an explicit allocation strategy.
    pub fn with_strategy(site: u64, strategy: AllocationStrategy) -> Self {
        Self::with_params(site, strategy, MAX_DIGIT)
    }

    /// Creates an empty replica with an explicit allocation strategy and
    /// per-level digit span.
    pub fn with_params(site: u64, strategy: AllocationStrategy, digit_span: u32) -> Self {
        assert!(site != 0, "site 0 is reserved for the document boundaries");
        assert!(
            digit_span >= 4,
            "the per-level digit space must leave room to allocate"
        );
        LogootDoc {
            site,
            entries: Vec::new(),
            strategy,
            digit_span,
            // Seed from the site so runs are reproducible per replica.
            rng: StdRng::seed_from_u64(site ^ 0x10607),
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the document is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The atoms in document order.
    pub fn to_vec(&self) -> Vec<A> {
        self.entries.iter().map(|(_, a)| a.clone()).collect()
    }

    /// The atom at `index`.
    pub fn get(&self, index: usize) -> Option<&A> {
        self.entries.get(index).map(|(_, a)| a)
    }

    /// The position identifier of the atom at `index`.
    pub fn position_at(&self, index: usize) -> Option<&Position> {
        self.entries.get(index).map(|(p, _)| p)
    }

    /// The owning site.
    pub fn site(&self) -> u64 {
        self.site
    }

    /// Inserts `atom` so it becomes the `index`-th atom; returns the
    /// operation to broadcast, or `None` if `index` is out of range.
    pub fn local_insert(&mut self, index: usize, atom: A) -> Option<LogootOp<A>> {
        if index > self.entries.len() {
            return None;
        }
        let before = if index == 0 {
            Position::begin()
        } else {
            self.entries[index - 1].0.clone()
        };
        let after = if index == self.entries.len() {
            Position::end()
        } else {
            self.entries[index].0.clone()
        };
        let position = self.allocate_between(&before, &after);
        debug_assert!(before < position && position < after);
        self.entries.insert(index, (position.clone(), atom.clone()));
        Some(LogootOp::Insert { position, atom })
    }

    /// Deletes the `index`-th atom; returns the operation to broadcast, or
    /// `None` if `index` is out of range.
    pub fn local_delete(&mut self, index: usize) -> Option<LogootOp<A>> {
        if index >= self.entries.len() {
            return None;
        }
        let (position, _) = self.entries.remove(index);
        Some(LogootOp::Delete { position })
    }

    /// Replays an operation received from another replica. Both variants are
    /// idempotent, so re-delivery is harmless.
    pub fn apply(&mut self, op: &LogootOp<A>) {
        match op {
            LogootOp::Insert { position, atom } => {
                match self.entries.binary_search_by(|(p, _)| p.cmp(position)) {
                    Ok(_) => {} // already present (duplicate delivery)
                    Err(i) => self.entries.insert(i, (position.clone(), atom.clone())),
                }
            }
            LogootOp::Delete { position } => {
                if let Ok(i) = self.entries.binary_search_by(|(p, _)| p.cmp(position)) {
                    self.entries.remove(i);
                }
            }
        }
    }

    /// Identifier-size statistics (Table 5 of the Treedoc paper).
    pub fn stats(&self) -> LogootStats {
        let mut stats = LogootStats {
            atoms: self.entries.len(),
            ..Default::default()
        };
        for (p, _) in &self.entries {
            let bytes = p.size_bytes();
            stats.total_id_bytes += bytes;
            stats.max_id_bytes = stats.max_id_bytes.max(bytes);
            stats.total_components += p.depth();
        }
        stats
    }

    /// Allocates a fresh position strictly between `before` and `after`
    /// (which must satisfy `before < after`): the free-digit search of the
    /// Logoot paper, extending the left position with an extra layer when no
    /// room exists at the current depth.
    fn allocate_between(&mut self, before: &Position, after: &Position) -> Position {
        debug_assert!(before < after, "{before} !< {after}");
        let mut prefix: Vec<Component> = Vec::new();
        // While the prefix built so far equals `after`'s prefix, `after`
        // bounds the digit from above; once they diverge (the prefix is then
        // strictly smaller), any digit up to the per-level span works.
        let mut bounded_by_after = true;
        for depth in 0.. {
            let low = before.get(depth).map(|c| c.digit).unwrap_or(MIN_DIGIT);
            let high = if bounded_by_after {
                after
                    .get(depth)
                    .map(|c| c.digit)
                    .unwrap_or(self.digit_span)
                    .min(self.digit_span.max(low.saturating_add(2)))
            } else {
                self.digit_span.max(low.saturating_add(2))
            };
            if high > low + 1 {
                let digit = self.strategy.pick(low, high, &mut self.rng);
                prefix.push(Component::new(digit, self.site));
                return Position::new(prefix);
            }
            // No room at this depth: copy the left neighbour's component (or
            // a sentinel if it is exhausted) and descend one layer.
            let copied = before
                .get(depth)
                .copied()
                .unwrap_or_else(Component::sentinel);
            if bounded_by_after {
                bounded_by_after = after.get(depth) == Some(&copied);
            }
            prefix.push(copied);
        }
        unreachable!("the digit space is dense: a free digit always exists at some depth")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(site: u64) -> LogootDoc<char> {
        LogootDoc::new(site)
    }

    #[test]
    fn sequential_editing_matches_a_vector() {
        let mut d = doc(1);
        let mut model = Vec::new();
        for (i, c) in "hello world".chars().enumerate() {
            d.local_insert(i, c).unwrap();
            model.insert(i, c);
        }
        assert_eq!(d.to_vec(), model);
        d.local_delete(5).unwrap();
        model.remove(5);
        assert_eq!(d.to_vec(), model);
        assert_eq!(d.get(0), Some(&'h'));
        assert_eq!(d.len(), model.len());
    }

    #[test]
    fn out_of_range_edits_return_none() {
        let mut d = doc(1);
        assert!(d.local_insert(1, 'x').is_none());
        assert!(d.local_delete(0).is_none());
    }

    #[test]
    fn positions_are_strictly_increasing() {
        let mut d = doc(1);
        for i in 0..200 {
            d.local_insert(i, 'x').unwrap();
        }
        for w in d.entries.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn replay_converges() {
        let mut a = doc(1);
        let mut b = doc(2);
        let ops: Vec<_> = "treedoc"
            .chars()
            .enumerate()
            .map(|(i, c)| a.local_insert(i, c).unwrap())
            .collect();
        for op in &ops {
            b.apply(op);
        }
        assert_eq!(a.to_vec(), b.to_vec());
        // Concurrent inserts at the same place commute.
        let oa = a.local_insert(3, 'X').unwrap();
        let ob = b.local_insert(3, 'Y').unwrap();
        a.apply(&ob);
        b.apply(&oa);
        assert_eq!(a.to_vec(), b.to_vec());
        // Concurrent delete/delete of the same atom is idempotent.
        let da = a.local_delete(0).unwrap();
        let db = b.local_delete(0).unwrap();
        assert_eq!(da.position(), db.position());
        a.apply(&db);
        b.apply(&da);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut a = doc(1);
        let mut b = doc(2);
        let op = a.local_insert(0, 'x').unwrap();
        b.apply(&op);
        b.apply(&op);
        assert_eq!(b.len(), 1);
        let del = a.local_delete(0).unwrap();
        b.apply(&del);
        b.apply(&del);
        assert!(b.is_empty());
    }

    #[test]
    fn prepend_heavy_editing_extends_layers() {
        // Repeatedly inserting at the beginning exhausts the room below the
        // first digit and forces extra layers — identifiers grow, unlike
        // appends with the boundary strategy.
        let mut d = LogootDoc::<char>::with_strategy(1, AllocationStrategy::Boundary(4));
        for _ in 0..100 {
            d.local_insert(0, 'x').unwrap();
        }
        let stats = d.stats();
        assert!(
            stats.max_id_bytes > 10,
            "prepends should have deepened identifiers"
        );
        assert_eq!(stats.atoms, 100);
    }

    #[test]
    fn stats_accounting() {
        let mut d = doc(1);
        for i in 0..10 {
            d.local_insert(i, 'x').unwrap();
        }
        let stats = d.stats();
        assert_eq!(stats.atoms, 10);
        assert_eq!(stats.total_id_bytes, stats.total_components * 10);
        assert!(stats.avg_id_bytes() >= 10.0);
        assert!((stats.avg_id_bits() - stats.avg_id_bytes() * 8.0).abs() < f64::EPSILON);
        assert!(stats.max_id_bytes >= 10);
    }

    #[test]
    fn deletes_leave_no_residue() {
        let mut d = doc(1);
        for i in 0..50 {
            d.local_insert(i, 'x').unwrap();
        }
        for _ in 0..50 {
            d.local_delete(0).unwrap();
        }
        assert!(d.is_empty());
        assert_eq!(d.stats().total_id_bytes, 0, "no tombstones in Logoot");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Edit {
            Insert(usize, char),
            Delete(usize),
        }

        fn arb_edits(n: usize) -> impl Strategy<Value = Vec<Edit>> {
            proptest::collection::vec(
                prop_oneof![
                    (any::<usize>(), proptest::char::range('a', 'z'))
                        .prop_map(|(i, c)| Edit::Insert(i, c)),
                    any::<usize>().prop_map(Edit::Delete),
                ],
                0..n,
            )
        }

        fn run(doc: &mut LogootDoc<char>, edits: &[Edit]) -> Vec<LogootOp<char>> {
            let mut ops = Vec::new();
            for e in edits {
                match e {
                    Edit::Insert(i, c) => {
                        let idx = i % (doc.len() + 1);
                        ops.push(doc.local_insert(idx, *c).unwrap());
                    }
                    Edit::Delete(i) => {
                        if !doc.is_empty() {
                            let idx = i % doc.len();
                            ops.push(doc.local_delete(idx).unwrap());
                        }
                    }
                }
            }
            ops
        }

        proptest! {
            /// The local API matches plain vector semantics.
            #[test]
            fn matches_vector_semantics(edits in arb_edits(40)) {
                let mut d = LogootDoc::<char>::new(1);
                let mut model: Vec<char> = Vec::new();
                for e in &edits {
                    match e {
                        Edit::Insert(i, c) => {
                            let idx = i % (model.len() + 1);
                            model.insert(idx, *c);
                            d.local_insert(idx, *c).unwrap();
                        }
                        Edit::Delete(i) => {
                            if !model.is_empty() {
                                let idx = i % model.len();
                                model.remove(idx);
                                d.local_delete(idx).unwrap();
                            }
                        }
                    }
                }
                prop_assert_eq!(d.to_vec(), model);
            }

            /// Replicas exchanging concurrent batches converge.
            #[test]
            fn concurrent_batches_converge(edits_a in arb_edits(15), edits_b in arb_edits(15)) {
                let mut a = LogootDoc::<char>::new(1);
                let mut b = LogootDoc::<char>::new(2);
                // Common prefix so the batches actually interleave.
                let seed: Vec<_> = "base text".chars().enumerate()
                    .map(|(i, c)| a.local_insert(i, c).unwrap())
                    .collect();
                for op in &seed { b.apply(op); }
                let ops_a = run(&mut a, &edits_a);
                let ops_b = run(&mut b, &edits_b);
                for op in &ops_b { a.apply(op); }
                for op in &ops_a { b.apply(op); }
                prop_assert_eq!(a.to_vec(), b.to_vec());
            }
        }
    }
}
