//! Logoot positions: lists of fixed-size components ordered
//! lexicographically.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Size of the digit part of a component, in bytes.
pub const DIGIT_BYTES: usize = 4;
/// Size of the site part of a component, in bytes (same as Treedoc's site
/// identifiers).
pub const SITE_BYTES: usize = 6;
/// Size of one component: 10 bytes, matching the Treedoc paper's comparison
/// set-up (§5.3).
pub const COMPONENT_BYTES: usize = DIGIT_BYTES + SITE_BYTES;

/// Smallest digit value (reserved for the virtual beginning-of-document
/// position).
pub const MIN_DIGIT: u32 = 0;
/// Largest digit value (reserved for the virtual end-of-document position).
pub const MAX_DIGIT: u32 = u32::MAX;

/// One component of a Logoot position: a digit and the site that created it.
///
/// Site number 0 is reserved for the virtual document boundaries and the
/// sentinel components pushed while descending during allocation; real
/// replicas must use non-zero site numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Component {
    /// The digit, compared first.
    pub digit: u32,
    /// The creating site, compared second.
    pub site: u64,
}

impl Component {
    /// Creates a component.
    pub const fn new(digit: u32, site: u64) -> Self {
        Component { digit, site }
    }

    /// The sentinel component used when extending past the end of a shorter
    /// position during allocation.
    pub const fn sentinel() -> Self {
        Component {
            digit: MIN_DIGIT,
            site: 0,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.digit, self.site)
    }
}

/// A Logoot position identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Position {
    components: Vec<Component>,
}

impl Position {
    /// Builds a position from components.
    pub fn new(components: Vec<Component>) -> Self {
        Position { components }
    }

    /// The virtual position before the first atom.
    pub fn begin() -> Self {
        Position {
            components: vec![Component::new(MIN_DIGIT, 0)],
        }
    }

    /// The virtual position after the last atom.
    pub fn end() -> Self {
        Position {
            components: vec![Component::new(MAX_DIGIT, 0)],
        }
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components (layers).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Size of this identifier in bytes (10 bytes per component), the
    /// quantity compared in Table 5 of the Treedoc paper.
    pub fn size_bytes(&self) -> usize {
        self.components.len() * COMPONENT_BYTES
    }

    /// Component at `depth`, if present.
    pub fn get(&self, depth: usize) -> Option<&Component> {
        self.components.get(depth)
    }

    /// Extends this position with an extra component, returning the child
    /// position.
    pub fn extended(&self, component: Component) -> Position {
        let mut components = self.components.clone();
        components.push(component);
        Position { components }
    }
}

impl PartialOrd for Position {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Position {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic order; a strict prefix sorts before its extensions.
        self.components.cmp(&other.components)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_order_is_digit_then_site() {
        assert!(Component::new(1, 9) < Component::new(2, 1));
        assert!(Component::new(1, 1) < Component::new(1, 2));
        assert_eq!(Component::new(3, 3), Component::new(3, 3));
    }

    #[test]
    fn position_order_is_lexicographic() {
        let a = Position::new(vec![Component::new(1, 1)]);
        let b = Position::new(vec![Component::new(1, 1), Component::new(5, 2)]);
        let c = Position::new(vec![Component::new(2, 1)]);
        assert!(a < b, "a prefix sorts before its extension");
        assert!(b < c);
        assert!(Position::begin() < a);
        assert!(c < Position::end());
    }

    #[test]
    fn size_accounting_is_ten_bytes_per_component() {
        let p = Position::new(vec![Component::new(1, 1), Component::new(2, 2)]);
        assert_eq!(p.size_bytes(), 20);
        assert_eq!(p.depth(), 2);
        assert_eq!(COMPONENT_BYTES, 10);
    }

    #[test]
    fn display_forms() {
        let p = Position::new(vec![Component::new(1, 1), Component::new(2, 2)]);
        assert_eq!(p.to_string(), "<1.1:2.2>");
    }

    #[test]
    fn extended_appends() {
        let p = Position::new(vec![Component::new(1, 1)]);
        let q = p.extended(Component::new(7, 3));
        assert_eq!(q.depth(), 2);
        assert!(p < q);
    }
}
