//! Property tests for the telemetry instruments: histogram percentile and
//! merge algebra, and the trace ring's bounded-memory / eviction / JSONL
//! guarantees.

use proptest::prelude::*;
use treedoc_telemetry::{parse_jsonl, Histogram, Registry, TraceEvent, SUB_BITS};

/// A fresh enabled histogram fed `values`.
fn filled(registry: &Registry, name: &str, values: &[u64]) -> Histogram {
    let hist = registry.handle().histogram(name);
    for &v in values {
        hist.record(v);
    }
    hist
}

/// The quantisation contract: a reported percentile is the floor of the
/// bucket the true value landed in, so it is `<=` the true value and within
/// a `1/2^SUB_BITS` relative error of it.
fn floor_close(reported: u64, actual: u64) -> bool {
    reported <= actual && (actual - reported) as f64 <= actual as f64 / (1 << SUB_BITS) as f64
}

proptest! {
    /// Percentile extraction is monotone in the percentile argument.
    #[test]
    fn percentiles_are_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        a_pm in 0u32..1000,
        b_pm in 0u32..1000,
    ) {
        let registry = Registry::new();
        let hist = filled(&registry, "h", &values);
        let (lo, hi) = if a_pm <= b_pm { (a_pm, b_pm) } else { (b_pm, a_pm) };
        prop_assert!(
            hist.percentile(lo as f64 / 10.0) <= hist.percentile(hi as f64 / 10.0),
            "p{lo} > p{hi}"
        );
    }

    /// The extreme percentiles hit the recorded extremes (to bucket
    /// resolution): p0/p100 report the floors of the min/max buckets, and
    /// values below 2^SUB_BITS are exact.
    #[test]
    fn extreme_percentiles_bound_the_data(
        values in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let registry = Registry::new();
        let hist = filled(&registry, "h", &values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert!(floor_close(hist.percentile(0.0), min));
        prop_assert!(floor_close(hist.percentile(100.0), max));
    }

    /// Bucket-boundary values (everything below 2^SUB_BITS, and any value a
    /// bucket floor maps to) round-trip exactly through a single-value
    /// histogram at every percentile.
    #[test]
    fn boundary_values_are_exact(small in 0u64..(1 << SUB_BITS), octave in 0u32..50, pm in 1u32..1000) {
        let exact = small << octave; // a bucket floor in every octave
        let registry = Registry::new();
        let hist = filled(&registry, "h", &[exact]);
        prop_assert_eq!(hist.percentile(pm as f64 / 10.0), exact);
    }

    /// Merging is associative (and order-insensitive): (a ∪ b) ∪ c and
    /// a ∪ (b ∪ c) agree on every summary statistic the snapshot exposes.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..60),
        b in proptest::collection::vec(any::<u64>(), 0..60),
        c in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let left_reg = Registry::new();
        let ab = filled(&left_reg, "ab", &a);
        ab.merge_from(&filled(&left_reg, "b", &b));
        let left = filled(&left_reg, "left", &[]);
        left.merge_from(&ab);
        left.merge_from(&filled(&left_reg, "c", &c));

        let right_reg = Registry::new();
        let bc = filled(&right_reg, "bc", &b);
        bc.merge_from(&filled(&right_reg, "c", &c));
        let right = filled(&right_reg, "right", &a);
        right.merge_from(&bc);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        for pct in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(left.percentile(pct), right.percentile(pct), "p{}", pct);
        }
    }

    /// The trace ring never exceeds its capacity, evicts oldest-first
    /// (retained sequence numbers are the contiguous tail), and counts what
    /// it dropped.
    #[test]
    fn trace_ring_is_bounded_and_evicts_oldest(
        capacity in 1usize..32,
        recorded in 0usize..100,
    ) {
        let registry = Registry::with_trace_capacity(capacity);
        let tracer = registry.handle().tracer();
        for i in 0..recorded {
            tracer.record(TraceEvent { site: i as u64, ..TraceEvent::of("e") });
        }
        let events = tracer.events();
        prop_assert!(events.len() <= capacity);
        prop_assert_eq!(events.len(), recorded.min(capacity));
        prop_assert_eq!(tracer.dropped() as usize, recorded.saturating_sub(capacity));
        let first = recorded.saturating_sub(capacity) as u64;
        for (offset, event) in events.iter().enumerate() {
            prop_assert_eq!(event.seq, first + offset as u64);
            prop_assert_eq!(event.site, first + offset as u64);
        }
    }

    /// JSONL round-trip: a clean dump parses back to the same events, and
    /// truncating the dump at ANY byte boundary never panics and only ever
    /// costs whole records from the damaged point on.
    #[test]
    fn jsonl_survives_truncation(
        docs in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(proptest::char::range('a', 'z'), 0..8)),
            0..20,
        ),
        cut_ppm in 0u32..1_000_000,
    ) {
        let registry = Registry::new();
        let tracer = registry.handle().tracer();
        for (site, doc) in &docs {
            tracer.record(TraceEvent {
                site: *site,
                doc: doc.iter().collect(),
                ..TraceEvent::of("node.fault_in")
            });
        }
        let dump = tracer.to_jsonl();
        prop_assert_eq!(parse_jsonl(&dump), tracer.events());

        let cut = (dump.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        // Cut on a char boundary (the dump is ASCII except inside `doc`,
        // which this generator keeps ASCII too, but stay robust anyway).
        let mut cut = cut.min(dump.len());
        while cut > 0 && !dump.is_char_boundary(cut) {
            cut -= 1;
        }
        let parsed = parse_jsonl(&dump[..cut]);
        let all = tracer.events();
        prop_assert!(parsed.len() <= all.len());
        // Every surviving record is byte-identical to the original prefix.
        prop_assert_eq!(&parsed[..], &all[..parsed.len()]);
    }
}
