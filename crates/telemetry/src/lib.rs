//! One instrumentation layer for the whole Treedoc stack.
//!
//! Every subsystem of this workspace measures something — the replication
//! layer counts messages and bytes, the storage layer times checkpoints, the
//! hosting node watches eviction and fault-in latency — and before this crate
//! each of them threaded its own ad-hoc counters. [`Registry`] replaces that
//! with named, cheap, shareable instruments:
//!
//! - [`Counter`] — a monotonically increasing atomic `u64`.
//! - [`Gauge`] — a last-value atomic with a high-water mark.
//! - [`Histogram`] — log-bucketed (power-of-two octaves with
//!   2^[`SUB_BITS`] linear sub-buckets each, HDR-style) value distribution
//!   with p50/p90/p99 extraction and lossless merge.
//! - [`Tracer`] — a bounded ring buffer of structured [`TraceEvent`]s
//!   (site, document, epoch, LSN, byte counts, durations) exportable as
//!   JSONL.
//!
//! The hot-path contract is [`Telemetry`]: a cloneable handle that is either
//! backed by a [`Registry`] or disabled. Instruments resolved through a
//! disabled handle hold no allocation and every operation on them is a single
//! `Option` branch, so instrumented code compiles to near-zero cost when
//! telemetry is off — the `telemetry_overhead` bench bin pins this (<5%
//! enabled, indistinguishable disabled, on the sequential-typing hot path).
//!
//! Timing follows the same rule: [`Histogram::start`] returns a
//! [`Stopwatch`] that only reads the clock when the histogram is live, so a
//! disabled timer never calls `Instant::now()` at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------------

/// Linear sub-bucket bits per power-of-two octave: 32 sub-buckets, which
/// bounds the relative quantisation error of any recorded value to
/// `1/2^SUB_BITS` ≈ 3.1%. Values below `2^SUB_BITS` are stored exactly.
pub const SUB_BITS: usize = 5;

const SUB_COUNT: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64;

/// Total bucket count: one exact range below `2^SUB_BITS` plus
/// `64 - SUB_BITS` octaves of `2^SUB_BITS` sub-buckets, covering all of
/// `u64`.
pub const BUCKETS: usize = (64 - SUB_BITS + 1) << SUB_BITS;

/// The bucket a value lands in. Total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize;
    let sub = ((value >> (msb - SUB_BITS)) & SUB_MASK) as usize;
    ((msb - SUB_BITS + 1) << SUB_BITS) | sub
}

/// The smallest value that lands in bucket `index` — what percentile
/// extraction reports, so a percentile is exact whenever the underlying
/// values sit on bucket floors (all values `< 2^SUB_BITS` do).
fn bucket_floor(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let octave = index >> SUB_BITS;
    let sub = (index & (SUB_COUNT - 1)) as u64;
    (SUB_COUNT as u64 + sub) << (octave - 1)
}

/// Shared state of one histogram instrument.
#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn percentile(&self, pct: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(count);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(index);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    fn merge_from(&self, other: &HistogramCore) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
        }
    }
}

// ---------------------------------------------------------------------------
// Instrument handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Cloning shares the underlying value;
/// a handle resolved from a disabled [`Telemetry`] is an inert `None` and
/// every operation on it is one branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// `true` when backed by a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Shared state of one gauge: last set value plus its high-water mark.
#[derive(Debug, Default)]
struct GaugeCore {
    value: AtomicU64,
    max: AtomicU64,
}

/// A last-value instrument with a high-water mark (e.g. the causal hold-back
/// depth of a replica).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// Sets the current value, folding it into the high-water mark.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.value.store(value, Ordering::Relaxed);
            core.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Last set value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }

    /// Highest value ever set (0 when disabled).
    pub fn high_water(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// `true` when backed by a registry. Guard any expensive computation of
    /// the value to set behind this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A log-bucketed value distribution with percentile extraction. Values are
/// bucketed into power-of-two octaves of `2^`[`SUB_BITS`] linear sub-buckets
/// (≤3.1% relative quantisation error; values below `2^`[`SUB_BITS`] exact).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Starts a stopwatch that records elapsed **microseconds** into this
    /// histogram when stopped (or dropped). Disabled histograms never read
    /// the clock.
    #[inline]
    pub fn start(&self) -> Stopwatch {
        Stopwatch {
            start: self.0.as_ref().map(|_| Instant::now()),
            hist: self.0.clone(),
        }
    }

    /// The value at `pct` (0–100): the floor of the first bucket whose
    /// cumulative count reaches the nearest-rank index. Monotone in `pct`;
    /// 0 for an empty histogram.
    pub fn percentile(&self, pct: f64) -> u64 {
        self.0.as_ref().map_or(0, |c| c.percentile(pct))
    }

    /// Recorded values (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Folds `other`'s recorded distribution into this one. Bucket counts
    /// add, so merging is associative and commutative (pinned by proptest).
    /// No-op when either side is disabled.
    pub fn merge_from(&self, other: &Histogram) {
        if let (Some(mine), Some(theirs)) = (&self.0, &other.0) {
            mine.merge_from(theirs);
        }
    }

    /// `true` when backed by a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Times one span for a [`Histogram`]: created by [`Histogram::start`],
/// records the elapsed microseconds when stopped or dropped. Holds no clock
/// reading when the histogram is disabled.
#[derive(Debug)]
pub struct Stopwatch {
    start: Option<Instant>,
    hist: Option<Arc<HistogramCore>>,
}

impl Stopwatch {
    /// Stops the span, records it, and returns the elapsed microseconds
    /// (0 when the histogram is disabled).
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        let (Some(start), Some(hist)) = (self.start.take(), self.hist.take()) else {
            return 0;
        };
        let micros = start.elapsed().as_micros() as u64;
        hist.record(micros);
        micros
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// One structured trace record: which subsystem did what, where, and how
/// much of it. Fields that do not apply to an event kind stay 0 / empty.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic sequence number, assigned at record time (ring-buffer
    /// eviction order is ascending `seq`).
    pub seq: u64,
    /// Event kind, dotted like instrument names (e.g. `store.checkpoint`).
    pub kind: String,
    /// Originating site, 0 when not site-scoped.
    pub site: u64,
    /// Document identifier, empty when not document-scoped.
    pub doc: String,
    /// Flatten epoch at the event.
    pub epoch: u64,
    /// Group-WAL log sequence number, 0 when not WAL-scoped.
    pub lsn: u64,
    /// Bytes moved by the event.
    pub bytes: u64,
    /// Wall-clock duration of the spanned work, microseconds.
    pub micros: u64,
}

impl TraceEvent {
    /// An event of `kind` with every other field defaulted — fill in what
    /// applies with struct-update syntax.
    pub fn of(kind: &str) -> Self {
        TraceEvent {
            kind: kind.to_string(),
            ..TraceEvent::default()
        }
    }
}

#[derive(Debug)]
struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

#[derive(Debug)]
struct TracerCore {
    ring: Mutex<TraceRing>,
}

/// A bounded ring buffer of [`TraceEvent`]s. Recording past capacity evicts
/// the oldest event; [`Tracer::to_jsonl`] exports one JSON object per line.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<TracerCore>>);

impl Tracer {
    /// Records an event, assigning its sequence number. The oldest event is
    /// evicted when the ring is full.
    pub fn record(&self, event: TraceEvent) {
        let Some(core) = &self.0 else { return };
        let mut ring = core.ring.lock().expect("trace ring lock");
        let mut event = event;
        event.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Records the event built by `f` — the builder only runs when tracing
    /// is live, so hot paths pay nothing to construct events nobody stores.
    #[inline]
    pub fn record_with(&self, f: impl FnOnce() -> TraceEvent) {
        if self.0.is_some() {
            self.record(f());
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |core| {
            core.ring
                .lock()
                .expect("trace ring lock")
                .events
                .iter()
                .cloned()
                .collect()
        })
    }

    /// Events evicted by the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.ring.lock().expect("trace ring lock").dropped)
    }

    /// Renders the retained events as JSONL (one event per line, oldest
    /// first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&serde_json::to_string(&event).expect("trace event serializes"));
            out.push('\n');
        }
        out
    }

    /// `true` when backed by a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Parses a JSONL trace dump, tolerating damage: lines that do not parse as
/// a [`TraceEvent`] — a truncated tail, an interleaved log line — are
/// skipped, never a panic. The inverse of [`Tracer::to_jsonl`] on clean
/// input (pinned by proptest).
pub fn parse_jsonl(input: &str) -> Vec<TraceEvent> {
    input
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() {
                return None;
            }
            serde_json::from_str::<TraceEvent>(line).ok()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Registry and the Telemetry handle
// ---------------------------------------------------------------------------

/// Default [`Tracer`] ring capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

#[derive(Debug)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCore>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    tracer: Arc<TracerCore>,
}

/// The home of every instrument: resolves names to shared [`Counter`] /
/// [`Gauge`] / [`Histogram`] cells, owns the [`Tracer`] ring, and snapshots
/// the whole collection as serialisable data. Cloning shares the registry.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default trace capacity.
    pub fn new() -> Self {
        Registry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty registry whose tracer retains at most `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                tracer: Arc::new(TracerCore {
                    ring: Mutex::new(TraceRing {
                        events: VecDeque::new(),
                        capacity: capacity.max(1),
                        next_seq: 0,
                        dropped: 0,
                    }),
                }),
            }),
        }
    }

    /// An enabled [`Telemetry`] handle over this registry.
    pub fn handle(&self) -> Telemetry {
        Telemetry {
            registry: Some(self.clone()),
        }
    }

    /// Folds another registry's instruments into this one: counters add,
    /// gauges keep the larger value and high-water mark, histograms merge
    /// bucket-wise. Trace rings are not merged (events stay with the
    /// registry that recorded them). Used by the bench harness to aggregate
    /// per-run registries into one dump.
    pub fn merge_from(&self, other: &Registry) {
        let theirs = other.inner.counters.lock().expect("registry lock");
        for (name, cell) in theirs.iter() {
            self.counter_cell(name)
                .fetch_add(cell.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        drop(theirs);
        let theirs = other.inner.gauges.lock().expect("registry lock");
        for (name, core) in theirs.iter() {
            let mine = self.gauge_cell(name);
            mine.value
                .fetch_max(core.value.load(Ordering::Relaxed), Ordering::Relaxed);
            mine.max
                .fetch_max(core.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        drop(theirs);
        let theirs = other.inner.histograms.lock().expect("registry lock");
        for (name, core) in theirs.iter() {
            self.histogram_cell(name).merge_from(core);
        }
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        self.inner
            .counters
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    fn gauge_cell(&self, name: &str) -> Arc<GaugeCore> {
        self.inner
            .gauges
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    fn histogram_cell(&self, name: &str) -> Arc<HistogramCore> {
        self.inner
            .histograms
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new()))
            .clone()
    }

    /// A point-in-time copy of every instrument, ordered by name — the one
    /// source of truth bench bins and reports read, serialisable straight to
    /// JSON with [`RegistrySnapshot::to_json`].
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(name, cell)| CounterSnapshot {
                    name: name.clone(),
                    value: cell.load(Ordering::Relaxed),
                })
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(name, core)| GaugeSnapshot {
                    name: name.clone(),
                    value: core.value.load(Ordering::Relaxed),
                    high_water: core.max.load(Ordering::Relaxed),
                })
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(name, core)| core.snapshot(name))
                .collect(),
        }
    }
}

/// The cloneable capability every instrumented subsystem holds: either
/// backed by a [`Registry`] (enabled) or inert (disabled, the default).
/// Instruments resolved through a disabled handle are `None`-backed and
/// cost one branch per operation.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Option<Registry>,
}

impl Telemetry {
    /// The inert handle: every instrument resolved from it is a no-op.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// `true` when backed by a registry.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.registry.as_ref().map(|r| r.counter_cell(name)))
    }

    /// Resolves (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.registry.as_ref().map(|r| r.gauge_cell(name)))
    }

    /// Resolves (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.registry.as_ref().map(|r| r.histogram_cell(name)))
    }

    /// The registry's tracer (an inert tracer when disabled).
    pub fn tracer(&self) -> Tracer {
        Tracer(self.registry.as_ref().map(|r| r.inner.tracer.clone()))
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One counter in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Last set value.
    pub value: u64,
    /// Highest value ever set.
    pub high_water: u64,
}

/// One histogram in a [`RegistrySnapshot`]: totals plus the extracted
/// percentiles (bucket floors — exact below `2^`[`SUB_BITS`], ≤3.1% low
/// above).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of a whole [`Registry`], name-ordered and
/// serialisable — what `--telemetry-out` writes and what reports read their
/// numbers from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Every counter, ordered by name.
    pub counters: Vec<CounterSnapshot>,
    /// Every gauge, ordered by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Every histogram, ordered by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty-printed JSON of the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_is_order_preserving_and_floor_exact() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
            assert!(bucket_floor(idx) <= v, "floor above value at {v}");
            // The floor of a value's bucket maps back to the same bucket.
            assert_eq!(
                bucket_index(bucket_floor(idx)),
                idx,
                "floor escapes bucket at {v}"
            );
        }
        // Spot-check the extremes.
        assert_eq!(bucket_index(0), 0);
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(
            bucket_index(bucket_floor(bucket_index(u64::MAX))),
            bucket_index(u64::MAX)
        );
    }

    #[test]
    fn small_values_are_exact() {
        let registry = Registry::new();
        let hist = registry.handle().histogram("h");
        for v in [0u64, 1, 2, 17, 31] {
            hist.record(v);
        }
        assert_eq!(hist.percentile(0.0), 0);
        assert_eq!(hist.percentile(50.0), 2);
        assert_eq!(hist.percentile(100.0), 31);
    }

    #[test]
    fn counters_and_gauges_share_by_name() {
        let registry = Registry::new();
        let telemetry = registry.handle();
        telemetry.counter("c").add(3);
        telemetry.counter("c").inc();
        assert_eq!(telemetry.counter("c").value(), 4);
        let gauge = telemetry.gauge("g");
        gauge.set(9);
        gauge.set(4);
        assert_eq!(gauge.value(), 4);
        assert_eq!(gauge.high_water(), 9);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(4));
        assert_eq!(snap.gauge("g").unwrap().high_water, 9);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let telemetry = Telemetry::disabled();
        let counter = telemetry.counter("c");
        counter.inc();
        assert_eq!(counter.value(), 0);
        assert!(!counter.is_enabled());
        let hist = telemetry.histogram("h");
        let sw = hist.start();
        assert_eq!(sw.stop(), 0);
        assert_eq!(hist.count(), 0);
        telemetry.tracer().record(TraceEvent::of("x"));
        assert!(telemetry.tracer().events().is_empty());
    }

    #[test]
    fn stopwatch_records_on_stop_and_drop() {
        let registry = Registry::new();
        let hist = registry.handle().histogram("h");
        hist.start().stop();
        {
            let _sw = hist.start();
        }
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn tracer_ring_evicts_oldest_first() {
        let registry = Registry::with_trace_capacity(3);
        let tracer = registry.handle().tracer();
        for i in 0..5u64 {
            tracer.record(TraceEvent {
                site: i,
                ..TraceEvent::of("e")
            });
        }
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(tracer.dropped(), 2);
    }

    #[test]
    fn jsonl_round_trips() {
        let registry = Registry::new();
        let tracer = registry.handle().tracer();
        tracer.record(TraceEvent {
            site: 7,
            doc: "doc-1".into(),
            bytes: 42,
            ..TraceEvent::of("store.checkpoint")
        });
        let dump = tracer.to_jsonl();
        let parsed = parse_jsonl(&dump);
        assert_eq!(parsed, tracer.events());
        // Truncation mid-line loses only the damaged record.
        let cut = &dump[..dump.len() - 3];
        assert!(parse_jsonl(cut).is_empty());
    }

    #[test]
    fn registry_merge_folds_instruments() {
        let a = Registry::new();
        let b = Registry::new();
        a.handle().counter("c").add(2);
        b.handle().counter("c").add(5);
        b.handle().counter("only_b").inc();
        a.handle().histogram("h").record(10);
        b.handle().histogram("h").record(1000);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.counter("only_b"), Some(1));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let registry = Registry::new();
        let t = registry.handle();
        t.counter("a.b").add(11);
        t.histogram("lat").record(250);
        let snap = registry.snapshot();
        let json = snap.to_json();
        let back: RegistrySnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }
}
