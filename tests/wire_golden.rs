//! Golden wire vectors: checked-in encoded bytes for every envelope and WAL
//! record shape, asserted in **both** directions (fixture encodes to the
//! golden bytes; golden bytes decode to the fixture).
//!
//! These bytes are the wire format v4 contract. An accidental layout change
//! — reordered fields, a different tag, a varint width change — fails this
//! test loudly instead of silently breaking interop between replicas (or
//! recovery of stores written before the change). If you change the format
//! **deliberately**, bump [`codec::WIRE_VERSION`], keep a decoder for the
//! old version, and regenerate these vectors.
//!
//! Three prior generations stay decodable and are pinned here too: the v3
//! binary vectors (v4 minus the sync/snapshot envelopes — a strict encoding
//! subset, so decode-only checks cover them), the v2 vectors (v3 minus the
//! run-step batch entries) and the v1 JSON WAL records.

use treedoc_repro::core::codec::{put_site, put_u8, put_varint};
use treedoc_repro::core::node::Content;
use treedoc_repro::core::{PathElem, PosId, Side};
use treedoc_repro::prelude::*;
use treedoc_repro::replication::sync::{encode_bound, encode_cells};
use treedoc_repro::replication::{
    wire, DecisionKind, FlattenDecision, FlattenPropose, FlattenVote, RangeDigest, SnapshotChunk,
    SnapshotOffer, SyncDigests, SyncRoot, SyncRuns, VoteStage, WalRecord,
};

type TestOp = Op<String, Sdis>;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

fn pos(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
    PosId::from_elems(
        desc.iter()
            .map(|&(bit, dis)| PathElem {
                side: Side::from_bit(bit),
                dis: dis.map(|d| Sdis::new(SiteId::from_u64(d))),
            })
            .collect(),
    )
}

fn clock(pairs: &[(u64, u64)]) -> VectorClock {
    let mut c = VectorClock::new();
    for &(s, v) in pairs {
        c.observe(SiteId::from_u64(s), v);
    }
    c
}

fn msg(sender: u64, pairs: &[(u64, u64)], op: TestOp) -> CausalMessage<TestOp> {
    CausalMessage {
        sender: SiteId::from_u64(sender),
        clock: clock(pairs),
        payload: op,
    }
}

/// Asserts both directions of one envelope golden vector.
fn check_envelope(golden_hex: &str, fixture: Envelope<TestOp>) {
    let encoded = encode_envelope(&fixture);
    assert_eq!(
        hex(&encoded),
        golden_hex,
        "wire layout changed for {fixture:?} — see the module docs before \
         regenerating this vector"
    );
    let decoded: Envelope<TestOp> = decode_envelope(&unhex(golden_hex)).expect("golden decodes");
    assert_eq!(decoded, fixture);
}

/// Asserts the decode direction only: `golden_hex` is a **previous-generation**
/// encoding (wire v2 or v3) the current decoder must keep reading.
fn check_envelope_decodes(golden_hex: &str, fixture: Envelope<TestOp>) {
    let decoded: Envelope<TestOp> =
        decode_envelope(&unhex(golden_hex)).expect("legacy golden decodes");
    assert_eq!(decoded, fixture);
}

/// Asserts both directions of one WAL-record golden vector.
fn check_wal(golden_hex: &str, fixture: WalRecord<TestOp>) {
    let encoded = wire::encode_wal_record(&fixture);
    assert_eq!(
        hex(&encoded),
        golden_hex,
        "WAL record layout changed for {fixture:?} — see the module docs \
         before regenerating this vector"
    );
    let decoded: WalRecord<TestOp> =
        wire::decode_wal_record(&unhex(golden_hex)).expect("golden decodes");
    assert_eq!(decoded, fixture);
}

#[test]
fn op_envelope_golden_vector() {
    check_envelope(
        "0401010000000000010200000000000103000000000002050000020102000000000001026869",
        Envelope::Op {
            epoch: 1,
            msg: msg(
                1,
                &[(1, 3), (2, 5)],
                Op::Insert {
                    id: pos(&[(1, None), (0, Some(1))]),
                    atom: "hi".into(),
                },
            ),
        },
    );
}

#[test]
fn op_batch_golden_vector() {
    // Three delta-encoded entries: the second elides sender and clock (same
    // sender, clock = predecessor + own increment) and shares the first's
    // path prefix; the third deletes the first entry's atom.
    check_envelope(
        "040303000000000000010100000000000101000001000100000000000101610003000101010100000000000101620003010100",
        Envelope::OpBatch(OpBatch {
            entries: vec![
                (
                    0,
                    msg(
                        1,
                        &[(1, 1)],
                        Op::Insert {
                            id: pos(&[(0, Some(1))]),
                            atom: "a".into(),
                        },
                    ),
                ),
                (
                    0,
                    msg(
                        1,
                        &[(1, 2)],
                        Op::Insert {
                            id: pos(&[(0, Some(1)), (1, Some(1))]),
                            atom: "b".into(),
                        },
                    ),
                ),
                (
                    0,
                    msg(
                        1,
                        &[(1, 3)],
                        Op::Delete {
                            id: pos(&[(0, Some(1))]),
                        },
                    ),
                ),
            ],
        }),
    );
}

#[test]
fn ack_envelope_golden_vector() {
    check_envelope(
        "0402000000000002020000000000010300000000000207",
        Envelope::Ack {
            from: SiteId::from_u64(2),
            clock: clock(&[(1, 3), (2, 7)]),
        },
    );
}

#[test]
fn flatten_envelope_golden_vectors() {
    check_envelope(
        "040400000000000102020982808080100102000000000001040000000000020401",
        Envelope::FlattenPropose(FlattenPropose {
            proposal: FlattenProposal {
                proposer: SiteId::from_u64(1),
                subtree: vec![Side::Left, Side::Right],
                base_revision: 9,
                txn: (1 << 32) | 2,
            },
            protocol: CommitProtocol::ThreePhase,
            base_clock: clock(&[(1, 4), (2, 4)]),
            epoch: 1,
        }),
    );
    check_envelope(
        "0405070000000000030100",
        Envelope::FlattenVote(FlattenVote {
            txn: 7,
            from: SiteId::from_u64(3),
            vote: Vote::Yes,
            stage: VoteStage::Vote,
        }),
    );
    check_envelope(
        "04060701",
        Envelope::FlattenDecision(FlattenDecision {
            txn: 7,
            kind: DecisionKind::Commit,
        }),
    );
}

#[test]
fn wire_v2_vectors_stay_decodable() {
    // The exact vectors this file pinned while WIRE_VERSION was 2. v2 never
    // sets the run-step entry flag, so its encodings are a strict subset of
    // v3 and the current decoder must keep reading them — a store or peer
    // from before the run codec is still understood.
    check_envelope_decodes(
        "0201010000000000010200000000000103000000000002050000020102000000000001026869",
        Envelope::Op {
            epoch: 1,
            msg: msg(
                1,
                &[(1, 3), (2, 5)],
                Op::Insert {
                    id: pos(&[(1, None), (0, Some(1))]),
                    atom: "hi".into(),
                },
            ),
        },
    );
    check_envelope_decodes(
        "0202000000000002020000000000010300000000000207",
        Envelope::Ack {
            from: SiteId::from_u64(2),
            clock: clock(&[(1, 3), (2, 7)]),
        },
    );
    check_envelope_decodes(
        "0205070000000000030100",
        Envelope::FlattenVote(FlattenVote {
            txn: 7,
            from: SiteId::from_u64(3),
            vote: Vote::Yes,
            stage: VoteStage::Vote,
        }),
    );
}

/// The entries a run of sequential typing stamps: each identifier is the
/// spine successor of the previous one (exactly the cells one coalesced
/// [`treedoc_repro::core::RunTree`] run holds), the sender is constant and
/// every clock is the previous clock plus the sender's own increment.
fn run_sourced_entries() -> Vec<(u64, CausalMessage<TestOp>)> {
    let site = SiteId::from_u64(1);
    let mut doc = Treedoc::<String, Sdis>::new(site);
    (0..4)
        .map(|k| {
            let op = doc
                .local_insert(k, ["r", "u", "n", "s"][k].to_string())
                .unwrap();
            (0u64, msg(1, &[(1, k as u64 + 1)], op))
        })
        .collect()
}

/// The same entries in the per-atom layout wire v2 used: every entry carries
/// its full delta-encoded position identifier. Built from the public codec
/// primitives so the bytes are the real v2 contract, not a re-encode.
fn per_atom_v2_batch(entries: &[(u64, CausalMessage<TestOp>)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, 2); // version (v2)
    put_u8(&mut out, 3); // ENV_OP_BATCH
    put_varint(&mut out, entries.len() as u64);
    for (i, (epoch, m)) in entries.iter().enumerate() {
        put_varint(&mut out, *epoch);
        let prev = if i == 0 {
            // Head entry: full sender and clock.
            put_site(&mut out, m.sender);
            put_varint(&mut out, 1);
            put_site(&mut out, m.sender);
            put_varint(&mut out, m.clock.get(m.sender));
            None
        } else {
            // Same sender, clock = predecessor + own increment.
            put_u8(&mut out, 0b0000_0011);
            Some(&entries[i - 1].1.payload)
        };
        m.payload.encode_payload(prev, &mut out);
    }
    out
}

#[test]
fn run_sourced_batch_golden_vector() {
    let entries = run_sourced_entries();
    let batch = Envelope::OpBatch(OpBatch {
        entries: entries.clone(),
    });

    // v4 both ways: the three continuation entries are run steps (epoch,
    // flags 0x07, side byte, atom) — no position identifier on the wire.
    check_envelope(
        "040304000000000000010100000000000101000001000100000000000101720007010175000701016e0007010173",
        batch,
    );

    // The identical operations in the per-atom v2 layout must decode to the
    // same entries — a run-coalesced document and a per-atom replica see
    // exactly the same operation stream.
    let v2 = per_atom_v2_batch(&entries);
    check_envelope_decodes(&hex(&v2), Envelope::OpBatch(OpBatch { entries }));

    // And the run-step form is strictly smaller: each continuation entry
    // drops its delta-encoded identifier (a 6-byte SDIS plus the path
    // header) for a single side byte.
    let v4 = unhex("040304000000000000010100000000000101000001000100000000000101720007010175000701016e0007010173");
    assert!(
        v4.len() + 8 * 3 <= v2.len(),
        "run batch {}B vs per-atom {}B",
        v4.len(),
        v2.len()
    );
}

#[test]
fn sync_envelope_golden_vectors() {
    // The five state-sync shapes wire v4 added: the root probe, a
    // digest-walk round, a leaf cell exchange, and the two snapshot
    // bootstrap envelopes.
    let mid = pos(&[(1, None), (0, Some(1))]);
    check_envelope(
        "040700000000000188776655443322112a02000000000001030000000000020501",
        Envelope::SyncRoot(SyncRoot {
            from: SiteId::from_u64(1),
            digest: 0x1122_3344_5566_7788,
            cells: 42,
            clock: clock(&[(1, 3), (2, 5)]),
            reply: true,
        }),
    );
    check_envelope(
        "040800000000000202000a000201020000000000010700000000000000030a0002010200000000000100090000000000000004",
        Envelope::SyncDigests(SyncDigests {
            from: SiteId::from_u64(2),
            ranges: vec![
                RangeDigest {
                    lo: encode_bound::<Sdis>(None),
                    hi: encode_bound(Some(&mid)),
                    digest: 7,
                    cells: 3,
                },
                RangeDigest {
                    lo: encode_bound(Some(&mid)),
                    hi: encode_bound::<Sdis>(None),
                    digest: 9,
                    cells: 4,
                },
            ],
        }),
    );
    let cells: Vec<(PosId<Sdis>, Content<String>)> = vec![
        (pos(&[(0, Some(1))]), Content::Live("hi".into())),
        (pos(&[(0, Some(1)), (1, Some(2))]), Content::Tombstone),
    ];
    check_envelope(
        "0409000000000001000a00020102000000000001021a020001000100000000000101026869010101010000000000020201",
        Envelope::SyncRuns(SyncRuns {
            from: SiteId::from_u64(1),
            lo: encode_bound::<Sdis>(None),
            hi: encode_bound(Some(&mid)),
            count: cells.len() as u64,
            cells: encode_cells(&cells),
            reply: true,
        }),
    );
    check_envelope(
        "040a000000000003efbeadde00000000ac0202",
        Envelope::SnapshotOffer(SnapshotOffer {
            from: SiteId::from_u64(3),
            digest: 0xdead_beef,
            total_bytes: 300,
            chunks: 2,
        }),
    );
    check_envelope(
        "040b000000000003010204cafebabe",
        Envelope::SnapshotChunk(SnapshotChunk {
            from: SiteId::from_u64(3),
            index: 1,
            total: 2,
            data: vec![0xca, 0xfe, 0xba, 0xbe],
        }),
    );
}

#[test]
fn wire_v3_vectors_stay_decodable() {
    // The exact vectors this file pinned while WIRE_VERSION was 3. v4 only
    // added the sync/snapshot envelope tags, so v3 encodings are a strict
    // subset and the current decoder must keep reading them — a WAL or peer
    // from before state-based sync is still understood.
    check_envelope_decodes(
        "0301010000000000010200000000000103000000000002050000020102000000000001026869",
        Envelope::Op {
            epoch: 1,
            msg: msg(
                1,
                &[(1, 3), (2, 5)],
                Op::Insert {
                    id: pos(&[(1, None), (0, Some(1))]),
                    atom: "hi".into(),
                },
            ),
        },
    );
    check_envelope_decodes(
        "0302000000000002020000000000010300000000000207",
        Envelope::Ack {
            from: SiteId::from_u64(2),
            clock: clock(&[(1, 3), (2, 7)]),
        },
    );
    check_envelope_decodes(
        "0305070000000000030100",
        Envelope::FlattenVote(FlattenVote {
            txn: 7,
            from: SiteId::from_u64(3),
            vote: Vote::Yes,
            stage: VoteStage::Vote,
        }),
    );
    check_envelope_decodes(
        "030304000000000000010100000000000101000001000100000000000101720007010175000701016e0007010173",
        Envelope::OpBatch(OpBatch {
            entries: run_sourced_entries(),
        }),
    );
}

#[test]
fn wal_record_golden_vectors() {
    check_wal(
        "02010100000000000201000000000002090100010001000000000002",
        WalRecord::Stamped {
            epoch: 1,
            msg: msg(
                2,
                &[(2, 9)],
                Op::Delete {
                    id: pos(&[(0, Some(2))]),
                },
            ),
        },
    );
    check_wal(
        "020302000000000001000000000002",
        WalRecord::PeersEnabled {
            peers: vec![SiteId::from_u64(1), SiteId::from_u64(2)],
        },
    );
    check_wal(
        "02054d01",
        WalRecord::Finished {
            txn: 77,
            committed: true,
            unilateral: false,
        },
    );
}

#[test]
fn legacy_json_wal_records_stay_recoverable() {
    // The v1 JSON generation is part of the on-disk contract too: a store
    // written before the binary codec must keep recovering. This is the
    // exact text the v1 encoder produced for a PeersEnabled record,
    // injected into a real store and replayed through `Replica::recover`.
    let golden: &[u8] = br#"{"PeersEnabled":{"peers":[[0,0,0,0,0,1],[0,0,0,0,0,2]]}}"#;

    let site = SiteId::from_u64(9);
    let mut replica = Replica::new(site, Treedoc::<String, Sdis>::new(site));
    replica.attach_store(DocStore::in_memory()).unwrap();
    let mut store = replica.detach_store().unwrap();
    store.append(0, golden).unwrap();

    let (recovered, report) = Replica::<Treedoc<String, Sdis>>::recover(store).unwrap();
    assert_eq!(report.wal_records_replayed, 1);
    assert!(
        recovered.at_least_once_enabled(),
        "the checked-in v1 record must replay with effect, not just parse"
    );
}
