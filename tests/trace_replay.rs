//! End-to-end replay tests on (reduced) synthetic corpora: the evaluation
//! pipeline of §5 from trace generation through diffing, replay, statistics
//! and on-disk measurement, checking the qualitative claims of the paper.

use treedoc_repro::trace::{
    replay_logoot, replay_treedoc, DisChoice, DocumentKind, DocumentSpec, ReplayConfig,
};

/// A scaled-down LaTeX-style document (keeps the integration test fast while
/// preserving the edit behaviour of the corpus generator).
fn small_latex() -> DocumentSpec {
    DocumentSpec {
        name: "mini.tex".into(),
        kind: DocumentKind::Latex,
        initial_units: 40,
        final_units: 120,
        revisions: 20,
        target_bytes: 5_000,
        vandalism: false,
        seed: 7,
    }
}

/// A scaled-down wiki-style document with vandalism.
fn small_wiki() -> DocumentSpec {
    DocumentSpec {
        name: "mini-wiki".into(),
        kind: DocumentKind::Wiki,
        initial_units: 10,
        final_units: 60,
        revisions: 80,
        target_bytes: 6_000,
        vandalism: true,
        seed: 11,
    }
}

#[test]
fn replay_is_lossless_for_every_configuration() {
    for spec in [small_latex(), small_wiki()] {
        let history = spec.generate();
        for dis in [DisChoice::Sdis, DisChoice::Udis] {
            for balancing in [false, true] {
                for flatten in [None, Some(1), Some(8)] {
                    let config = ReplayConfig {
                        dis,
                        balancing,
                        flatten_every: flatten,
                    };
                    let report = replay_treedoc(&history, config);
                    assert_eq!(
                        report.final_stats.live_atoms,
                        history.final_len(),
                        "{} under {}",
                        spec.name,
                        config.label()
                    );
                }
            }
        }
    }
}

#[test]
fn flattening_reduces_tombstones_and_identifier_sizes() {
    // The central qualitative claim of Table 1 / Table 3: flattening
    // aggressively garbage-collects tombstones and shortens identifiers, and
    // flatten-1 is at least as effective as flatten-8.
    let history = small_latex().generate();
    let none = replay_treedoc(&history, ReplayConfig::default());
    let every8 = replay_treedoc(
        &history,
        ReplayConfig {
            flatten_every: Some(8),
            ..ReplayConfig::default()
        },
    );
    let every1 = replay_treedoc(
        &history,
        ReplayConfig {
            flatten_every: Some(1),
            ..ReplayConfig::default()
        },
    );
    assert!(none.final_stats.tombstones > 0);
    assert!(every1.final_stats.total_nodes <= every8.final_stats.total_nodes);
    assert!(every8.final_stats.total_nodes <= none.final_stats.total_nodes);
    assert!(every1.non_tombstone_fraction() >= none.non_tombstone_fraction());
    assert!(every1.avg_pos_id_bits() <= none.avg_pos_id_bits());
    assert!(every1.disk_overhead_bytes <= none.disk_overhead_bytes);
}

#[test]
fn udis_stores_fewer_nodes_but_bigger_identifiers_per_node() {
    // The Table 4 trade-off: UDIS identifiers are larger per node, but the
    // eager discarding removes tombstones so the *total* overhead is lower in
    // the common case.
    let history = small_latex().generate();
    let sdis = replay_treedoc(&history, ReplayConfig::default());
    let udis = replay_treedoc(
        &history,
        ReplayConfig {
            dis: DisChoice::Udis,
            ..ReplayConfig::default()
        },
    );
    assert!(udis.final_stats.total_nodes < sdis.final_stats.total_nodes);
    assert_eq!(udis.final_stats.tombstones, 0);
    assert!(
        udis.overhead_per_atom_bits() < sdis.overhead_per_atom_bits(),
        "UDIS {} bits/atom should undercut SDIS {} bits/atom",
        udis.overhead_per_atom_bits(),
        sdis.overhead_per_atom_bits()
    );
}

#[test]
fn balancing_helps_identifier_sizes() {
    // The §4.1 claim: the balancing strategies shorten identifiers. The
    // effect is clearest without flattening; combined with aggressive
    // flattening it must at least not make things meaningfully worse
    // (Table 3 / Table 4 report the combination as the best configuration on
    // the full corpus — see the table3/table4 binaries).
    let history = small_latex().generate();
    let plain = replay_treedoc(&history, ReplayConfig::default());
    let balanced = replay_treedoc(
        &history,
        ReplayConfig {
            balancing: true,
            ..ReplayConfig::default()
        },
    );
    assert!(balanced.avg_pos_id_bits() <= plain.avg_pos_id_bits());
    assert!(balanced.final_stats.pos_ids.max_bits <= plain.final_stats.pos_ids.max_bits);

    let flat = replay_treedoc(
        &history,
        ReplayConfig {
            flatten_every: Some(2),
            ..ReplayConfig::default()
        },
    );
    let flat_bal = replay_treedoc(
        &history,
        ReplayConfig {
            flatten_every: Some(2),
            balancing: true,
            ..ReplayConfig::default()
        },
    );
    assert!(flat_bal.avg_pos_id_bits() <= flat.avg_pos_id_bits() * 1.15);
}

#[test]
fn wiki_vandalism_inflates_deletes() {
    // §5: "This results in an unexpectedly large number of deletes",
    // especially for Wikipedia documents.
    let history = small_wiki().generate();
    let report = replay_treedoc(&history, ReplayConfig::default());
    assert!(
        report.deletes as f64 >= 0.5 * history.final_len() as f64,
        "expected a large number of deletes, got {} for a {}-atom document",
        report.deletes,
        history.final_len()
    );
    assert!(report.non_tombstone_fraction() < 0.5);
}

#[test]
fn logoot_baseline_replays_the_same_content() {
    let history = small_wiki().generate();
    let logoot = replay_logoot(&history);
    let treedoc = replay_treedoc(&history, ReplayConfig::default());
    assert_eq!(logoot.final_stats.atoms, treedoc.final_stats.live_atoms);
    assert!(logoot.final_stats.total_id_bytes >= logoot.final_stats.atoms * 10);
}
