//! Workspace smoke test: the umbrella crate's `prelude` re-exports resolve,
//! and a two-replica insert/delete session converges using nothing but
//! `treedoc_repro::prelude`.

use treedoc_repro::prelude::{
    CausalMessage, Op, PosId, Replica, Sdis, SiteId, Treedoc, TreedocConfig, Udis,
};

/// Every name the prelude promises is nameable and has the expected shape.
#[test]
fn prelude_reexports_resolve() {
    // Types with generic parameters are checked by naming them fully.
    let _op: Option<Op<char, Sdis>> = None;
    let _id: Option<PosId<Udis>> = None;
    let _msg: Option<CausalMessage<Op<char, Sdis>>> = None;
    let _replica: Option<Replica<Treedoc<char, Udis>>> = None;

    // Values are constructible through the prelude alone.
    let config = TreedocConfig::balanced();
    let doc: Treedoc<char, Sdis> = Treedoc::with_config(SiteId::from_u64(9), config);
    assert_eq!(doc.len(), 0);
}

/// Two replicas exchange concurrent inserts and deletes through the causal
/// layer and converge, exercised purely through the prelude.
#[test]
fn two_replica_round_trip_converges() {
    let seed: Vec<char> = "treedoc".chars().collect();
    let mut alice = Replica::new(
        SiteId::from_u64(1),
        Treedoc::<char, Udis>::from_atoms(SiteId::from_u64(1), &seed),
    );
    let mut bob = Replica::new(
        SiteId::from_u64(2),
        Treedoc::<char, Udis>::from_atoms(SiteId::from_u64(2), &seed),
    );

    // Concurrent edits on both sides: inserts and a delete each.
    let mut from_alice: Vec<CausalMessage<Op<char, Udis>>> = Vec::new();
    let op = alice.doc_mut().local_insert(0, '>').unwrap();
    from_alice.push(alice.stamp(op));
    let op = alice.doc_mut().local_delete(3).unwrap();
    from_alice.push(alice.stamp(op));

    let mut from_bob: Vec<CausalMessage<Op<char, Udis>>> = Vec::new();
    let op = bob.doc_mut().local_insert(7, '!').unwrap();
    from_bob.push(bob.stamp(op));
    let op = bob.doc_mut().local_delete(0).unwrap();
    from_bob.push(bob.stamp(op));

    // Cross-deliver (causal order within each sender is preserved).
    for msg in from_bob {
        alice.receive(msg);
    }
    for msg in from_alice {
        bob.receive(msg);
    }

    assert_eq!(alice.pending(), 0, "no operation may stay buffered");
    assert_eq!(bob.pending(), 0, "no operation may stay buffered");
    assert_eq!(
        alice.doc().to_vec(),
        bob.doc().to_vec(),
        "replicas must converge"
    );
    assert_eq!(alice.digest(), bob.digest());
}
