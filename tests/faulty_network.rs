//! Cross-crate integration tests for the faulty-network workload: lossy
//! at-least-once delivery, duplicate-safe causal buffering and the
//! convergence matrix.

use treedoc_repro::prelude::{Scenario, ScenarioMatrix};
use treedoc_repro::sim::run;

#[test]
fn lossy_duplicating_network_converges_and_drains() {
    // The headline acceptance scenario: drops AND duplicates with
    // retransmission enabled must converge on all replicas with every
    // hold-back queue fully drained, and the report must account for the
    // injected faults.
    for seed in [1, 42, 2026] {
        let report = run(&Scenario {
            sites: 4,
            edits_per_site: 50,
            seed,
            ..Scenario::faulty()
        });
        assert!(report.converged, "seed {seed}: {report:?}");
        assert!(report.messages_dropped > 0, "seed {seed}: {report:?}");
        assert!(report.messages_duplicated > 0, "seed {seed}: {report:?}");
        assert!(report.retransmissions > 0, "seed {seed}: {report:?}");
        assert!(report.duplicates_discarded > 0, "seed {seed}: {report:?}");
        assert_eq!(report.ops_generated, 4 * 50);
    }
}

#[test]
fn duplicates_without_loss_need_no_retransmission() {
    let report = run(&Scenario {
        sites: 3,
        edits_per_site: 40,
        duplicate_prob: 0.15,
        reorder_burst_prob: 0.2,
        ..Default::default()
    });
    assert!(report.converged, "{report:?}");
    assert_eq!(report.retransmissions, 0);
    assert!(report.duplicates_discarded >= report.messages_duplicated);
}

#[test]
fn convergence_matrix_holds_across_fault_axes() {
    // loss × duplication × partition × burst (× balancing off): every cell
    // converges with a drained hold-back queue.
    let matrix = ScenarioMatrix::faulty(Scenario {
        sites: 3,
        edits_per_site: 24,
        ..Default::default()
    });
    let results = matrix.run();
    assert_eq!(results.len(), 16);
    for (scenario, report) in results {
        assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
        if scenario.drop_prob > 0.0 {
            assert!(scenario.retransmit, "lossy cells run at-least-once");
        }
    }
}

#[test]
fn faulty_runs_with_balancing_converge() {
    let report = run(&Scenario {
        sites: 3,
        edits_per_site: 40,
        balancing: true,
        ..Scenario::faulty()
    });
    assert!(report.converged, "{report:?}");
}

#[test]
fn partition_plus_loss_plus_duplication_converges() {
    // Compound fault: a mid-run partition of site 1 on top of a lossy,
    // duplicating network. Everything must still converge once healed and
    // retransmitted.
    let report = run(&Scenario {
        sites: 4,
        edits_per_site: 36,
        partition_first_site: true,
        ..Scenario::faulty()
    });
    assert!(report.converged, "{report:?}");
    assert!(
        report.max_pending > 0,
        "faults must exercise the hold-back queue"
    );
}
