//! Integration tests for the structural clean-up path: flatten agreed via
//! distributed commitment, aborts under concurrent edits, and storage
//! round-trips of flattened and unflattened replicas.

use treedoc_repro::commit::{
    run_three_phase, run_two_phase, CommitOutcome, FlattenProposal, TreedocParticipant,
};
use treedoc_repro::core::{Sdis, SiteId, Treedoc};
use treedoc_repro::storage::DiskImage;

type Doc = Treedoc<String, Sdis>;

fn site(n: u64) -> SiteId {
    SiteId::from_u64(n)
}

/// Builds `n` convergent replicas holding the same edited (tombstone-laden)
/// document.
fn convergent_replicas(n: u64) -> Vec<Doc> {
    let mut author = Doc::new(site(100));
    let mut ops = Vec::new();
    for k in 0..60 {
        ops.push(author.local_insert(k, format!("line {k}")).unwrap());
    }
    for _ in 0..20 {
        ops.push(author.local_delete(10).unwrap());
    }
    (1..=n)
        .map(|s| {
            let mut d = Doc::new(site(s));
            for op in &ops {
                d.apply(op).unwrap();
            }
            d
        })
        .collect()
}

#[test]
fn committed_flatten_keeps_replicas_convergent_and_removes_tombstones() {
    let mut docs = convergent_replicas(4);
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: docs[0].revision(),
        txn: 1,
    };
    let before: Vec<String> = docs[0].to_vec();
    {
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, stats) = run_two_phase(&proposal, &mut participants);
        assert_eq!(outcome, CommitOutcome::Committed);
        assert_eq!(stats.phases, 2);
    }
    let reference = docs[0].to_vec();
    assert_eq!(reference, before, "flatten must not change the content");
    for d in &docs {
        assert_eq!(d.to_vec(), reference);
        assert_eq!(d.stats().tombstones, 0);
        assert_eq!(d.node_count(), d.len());
        d.check_invariants().unwrap();
    }
}

#[test]
fn flatten_aborts_when_any_replica_keeps_editing() {
    let mut docs = convergent_replicas(3);
    let base = docs[0].revision();
    // Replica 2 edits after the proposal was taken.
    docs[2].next_revision();
    docs[2].local_insert(0, "late edit".to_string()).unwrap();
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: base,
        txn: 2,
    };
    let nodes_before: Vec<usize> = docs.iter().map(|d| d.node_count()).collect();
    {
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, _) = run_two_phase(&proposal, &mut participants);
        assert!(matches!(outcome, CommitOutcome::Aborted { no_votes: 1 }));
    }
    for (d, before) in docs.iter().zip(nodes_before) {
        assert_eq!(
            d.node_count(),
            before,
            "an aborted flatten leaves no side effects"
        );
    }
    // Once the editor is done, a fresh proposal (with an up-to-date base
    // revision) commits — including under 3PC.
    let base = docs.iter().map(|d| d.revision()).max().unwrap();
    for d in docs.iter_mut() {
        while d.revision() < base {
            d.next_revision();
        }
    }
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: base,
        txn: 3,
    };
    let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
    let (outcome, stats) = run_three_phase(&proposal, &mut participants);
    assert_eq!(outcome, CommitOutcome::Committed);
    assert_eq!(stats.phases, 3);
}

#[test]
fn flattened_and_unflattened_replicas_persist_and_reload() {
    let docs = convergent_replicas(2);
    for doc in &docs {
        let image = DiskImage::encode(doc.tree());
        let reloaded = image.decode::<Sdis>().expect("image decodes");
        assert_eq!(reloaded.to_vec(), doc.to_vec());
        assert_eq!(reloaded.node_count(), doc.node_count());
    }
    // Flattening shrinks the on-disk structure.
    let mut doc = convergent_replicas(1).remove(0);
    let before = DiskImage::encode(doc.tree()).structure_bytes();
    doc.flatten_all().unwrap();
    let after = DiskImage::encode(doc.tree()).structure_bytes();
    assert!(
        after < before,
        "flatten must shrink the on-disk structure ({after} vs {before})"
    );
}

#[test]
fn flatten_then_continue_editing_and_reconverge() {
    let mut docs = convergent_replicas(2);
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: docs[0].revision(),
        txn: 9,
    };
    {
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, _) = run_two_phase(&proposal, &mut participants);
        assert_eq!(outcome, CommitOutcome::Committed);
    }
    // Editing continues on the renamed (plain) identifiers and still
    // converges.
    let (left, right) = docs.split_at_mut(1);
    let a = &mut left[0];
    let b = &mut right[0];
    let op_a = a.local_insert(5, "post-flatten A".to_string()).unwrap();
    let op_b = b.local_insert(20, "post-flatten B".to_string()).unwrap();
    a.apply(&op_b).unwrap();
    b.apply(&op_a).unwrap();
    assert_eq!(a.to_vec(), b.to_vec());
}
