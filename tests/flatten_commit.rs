//! Integration tests for the structural clean-up path: flatten agreed via
//! distributed commitment (both the in-process coordinators and the real
//! over-the-wire protocol on the faulty simulated network), aborts under
//! concurrent edits, and storage round-trips of flattened and unflattened
//! replicas.

use treedoc_repro::commit::{
    run_three_phase, run_two_phase, CommitOutcome, CommitProtocol, FlattenProposal,
    TreedocParticipant,
};
use treedoc_repro::core::{Sdis, SiteId, Treedoc};
use treedoc_repro::replication::{Envelope, FlattenCoordinator, LinkConfig, Replica, SimNetwork};
use treedoc_repro::sim::{partitioned_commit_demo, run, Scenario, ScenarioMatrix};
use treedoc_repro::storage::DiskImage;

type Doc = Treedoc<String, Sdis>;

fn site(n: u64) -> SiteId {
    SiteId::from_u64(n)
}

/// Builds `n` convergent replicas holding the same edited (tombstone-laden)
/// document.
fn convergent_replicas(n: u64) -> Vec<Doc> {
    let mut author = Doc::new(site(100));
    let mut ops = Vec::new();
    for k in 0..60 {
        ops.push(author.local_insert(k, format!("line {k}")).unwrap());
    }
    for _ in 0..20 {
        ops.push(author.local_delete(10).unwrap());
    }
    (1..=n)
        .map(|s| {
            let mut d = Doc::new(site(s));
            for op in &ops {
                d.apply(op).unwrap();
            }
            d
        })
        .collect()
}

#[test]
fn committed_flatten_keeps_replicas_convergent_and_removes_tombstones() {
    let mut docs = convergent_replicas(4);
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: docs[0].revision(),
        txn: 1,
    };
    let before: Vec<String> = docs[0].to_vec();
    {
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, stats) = run_two_phase(&proposal, &mut participants);
        assert_eq!(outcome, CommitOutcome::Committed);
        assert_eq!(stats.phases, 2);
    }
    let reference = docs[0].to_vec();
    assert_eq!(reference, before, "flatten must not change the content");
    for d in &docs {
        assert_eq!(d.to_vec(), reference);
        assert_eq!(d.stats().tombstones, 0);
        assert_eq!(d.node_count(), d.len());
        d.check_invariants().unwrap();
    }
}

#[test]
fn flatten_aborts_when_any_replica_keeps_editing() {
    let mut docs = convergent_replicas(3);
    let base = docs[0].revision();
    // Replica 2 edits after the proposal was taken.
    docs[2].next_revision();
    docs[2].local_insert(0, "late edit".to_string()).unwrap();
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: base,
        txn: 2,
    };
    let nodes_before: Vec<usize> = docs.iter().map(|d| d.node_count()).collect();
    {
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, _) = run_two_phase(&proposal, &mut participants);
        assert!(matches!(outcome, CommitOutcome::Aborted { no_votes: 1 }));
    }
    for (d, before) in docs.iter().zip(nodes_before) {
        assert_eq!(
            d.node_count(),
            before,
            "an aborted flatten leaves no side effects"
        );
    }
    // Once the editor is done, a fresh proposal (with an up-to-date base
    // revision) commits — including under 3PC.
    let base = docs.iter().map(|d| d.revision()).max().unwrap();
    for d in docs.iter_mut() {
        while d.revision() < base {
            d.next_revision();
        }
    }
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: base,
        txn: 3,
    };
    let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
    let (outcome, stats) = run_three_phase(&proposal, &mut participants);
    assert_eq!(outcome, CommitOutcome::Committed);
    assert_eq!(stats.phases, 3);
}

#[test]
fn flattened_and_unflattened_replicas_persist_and_reload() {
    let docs = convergent_replicas(2);
    for doc in &docs {
        let image = DiskImage::encode(&doc.tree());
        let reloaded = match image.decode::<Sdis>() {
            Ok(tree) => tree,
            Err(err) => panic!("image must decode, got {err}"),
        };
        assert_eq!(reloaded.to_vec(), doc.to_vec());
        assert_eq!(reloaded.node_count(), doc.node_count());
        // A truncated copy fails with a diagnosis instead of a bare `None`.
        let mut torn = image.clone();
        torn.structure.truncate(torn.structure.len() / 2);
        assert!(
            torn.decode::<Sdis>().is_err(),
            "a torn image must be rejected with a typed DecodeError"
        );
    }
    // Flattening shrinks the on-disk structure.
    let mut doc = convergent_replicas(1).remove(0);
    let before = DiskImage::encode(&doc.tree()).structure_bytes();
    doc.flatten_all().unwrap();
    let after = DiskImage::encode(&doc.tree()).structure_bytes();
    assert!(
        after < before,
        "flatten must shrink the on-disk structure ({after} vs {before})"
    );
}

/// Builds `n` quiescent wire-level replicas with fully exchanged edits.
fn wire_replicas(
    n: u64,
    net: &mut SimNetwork<Envelope<treedoc_repro::core::Op<String, Sdis>>>,
) -> (Vec<SiteId>, Vec<Replica<Doc>>) {
    let site_ids: Vec<SiteId> = (1..=n).map(site).collect();
    let mut replicas: Vec<Replica<Doc>> = site_ids
        .iter()
        .map(|&s| Replica::new(s, Doc::new(s)))
        .collect();
    for i in 0..replicas.len() {
        for k in 0..8 {
            let len = replicas[i].doc().len();
            let op = replicas[i]
                .doc_mut()
                .local_insert(len.min(k), format!("site{} line{k}", i + 1))
                .unwrap();
            let env = replicas[i].stamp_envelope(op);
            net.broadcast(site_ids[i], &site_ids, env);
        }
    }
    while let Some(event) = net.step() {
        let idx = site_ids.iter().position(|&s| s == event.to).unwrap();
        let _ = replicas[idx].receive_any(event.payload);
    }
    (site_ids, replicas)
}

#[test]
fn dropped_votes_abort_two_phase_cleanly_instead_of_hanging() {
    // Site 3's link to the coordinator drops everything: its vote can never
    // arrive. The coordinator must retransmit, time out, and distribute an
    // abort that releases every prepared participant — no replica may be
    // left flattened or locked.
    let mut net = SimNetwork::new(LinkConfig::fixed(3), 97);
    let (site_ids, mut replicas) = wire_replicas(3, &mut net);
    net.set_link(site(3), site(1), LinkConfig::fixed(3).with_drop_prob(1.0));

    let propose = replicas[0]
        .propose_flatten(Vec::new(), CommitProtocol::TwoPhase)
        .expect("quiescent proposer votes Yes");
    let txn = propose.proposal.txn;
    let mut coordinator =
        FlattenCoordinator::new(propose, site_ids[1..].to_vec()).with_vote_timeout(10);

    let nodes_before: Vec<usize> = replicas.iter().map(|r| r.doc().node_count()).collect();
    let mut guard = 0;
    while !coordinator.is_done() {
        for (to, env) in coordinator.tick() {
            net.send(site_ids[0], to, env);
        }
        while let Some(event) = net.step() {
            if let Envelope::FlattenVote(vote) = &event.payload {
                if event.to == site_ids[0] {
                    coordinator.on_vote(*vote);
                    continue;
                }
            }
            let idx = site_ids.iter().position(|&s| s == event.to).unwrap();
            let (_, reply) = replicas[idx].receive_any(event.payload);
            if let Some(reply) = reply {
                net.send(event.to, event.from, reply);
            }
        }
        guard += 1;
        assert!(guard < 500, "2PC with a silent voter must not hang");
    }
    assert!(
        matches!(coordinator.outcome(), Some(CommitOutcome::Aborted { .. })),
        "a vote that never arrives aborts the proposal: {:?}",
        coordinator.outcome()
    );
    replicas[0].finish_flatten(txn, false);
    for (r, before) in replicas.iter().zip(nodes_before) {
        assert_eq!(r.flatten_epoch(), 0, "no replica flattened");
        assert_eq!(r.doc().node_count(), before, "abort leaves no side effects");
        assert!(!r.is_flatten_prepared(), "the abort released every lock");
    }
}

#[test]
fn coordinator_partition_blocks_two_phase_but_not_three_phase() {
    let two = partitioned_commit_demo(CommitProtocol::TwoPhase, 4, 2026);
    let three = partitioned_commit_demo(CommitProtocol::ThreePhase, 4, 2026);
    assert!(two.converged && three.converged, "{two:?}\n{three:?}");
    assert_eq!(two.committed_during_partition, 0, "2PC blocks: {two:?}");
    assert_eq!(
        three.committed_during_partition, 3,
        "3PC terminates unilaterally past the pre-commit: {three:?}"
    );
    assert!(two.blocked_ticks > three.blocked_ticks);
    assert!(three.protocol_messages > two.protocol_messages);
}

#[test]
fn distributed_flatten_over_a_lossy_partitioned_network_commits_and_converges() {
    // The acceptance cell: flatten proposals carried entirely as Envelope
    // messages over a lossy, duplicating, partitioned network — committed at
    // quiescence, aborted under concurrent edits, convergence everywhere,
    // with per-protocol message and byte accounting.
    for protocol in [CommitProtocol::TwoPhase, CommitProtocol::ThreePhase] {
        let report = run(&Scenario {
            sites: 4,
            edits_per_site: 40,
            partition_first_site: true,
            ..Scenario::flatten_faulty(protocol)
        });
        assert!(report.converged, "{protocol:?}: {report:?}");
        assert!(report.flatten_commits >= 1, "{protocol:?}: {report:?}");
        assert!(report.protocol_messages > 0, "{protocol:?}: {report:?}");
        assert!(report.protocol_bytes > 0, "{protocol:?}: {report:?}");
        assert!(report.partition_rounds > 0, "{protocol:?}: {report:?}");
    }
}

#[test]
fn flatten_commitment_matrix_reports_per_protocol_costs() {
    let matrix = ScenarioMatrix::flatten_commitment(Scenario {
        sites: 3,
        edits_per_site: 20,
        ..Scenario::default()
    });
    let results = matrix.run();
    assert_eq!(results.len(), 8);
    let mut by_protocol = std::collections::BTreeMap::new();
    for (scenario, report) in results {
        assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
        assert!(report.flatten_commits >= 1, "cell {scenario:?}: {report:?}");
        let entry = by_protocol
            .entry(scenario.flatten_protocol.label())
            .or_insert((0u64, 0usize));
        entry.0 += report.protocol_messages;
        entry.1 += report.protocol_bytes;
    }
    let two = by_protocol["2pc"];
    let three = by_protocol["3pc"];
    assert!(two.0 > 0 && three.0 > 0);
    assert!(two.1 > 0 && three.1 > 0);
}

#[test]
fn flatten_then_continue_editing_and_reconverge() {
    let mut docs = convergent_replicas(2);
    let proposal = FlattenProposal {
        proposer: site(1),
        subtree: Vec::new(),
        base_revision: docs[0].revision(),
        txn: 9,
    };
    {
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, _) = run_two_phase(&proposal, &mut participants);
        assert_eq!(outcome, CommitOutcome::Committed);
    }
    // Editing continues on the renamed (plain) identifiers and still
    // converges.
    let (left, right) = docs.split_at_mut(1);
    let a = &mut left[0];
    let b = &mut right[0];
    let op_a = a.local_insert(5, "post-flatten A".to_string()).unwrap();
    let op_b = b.local_insert(20, "post-flatten B".to_string()).unwrap();
    a.apply(&op_b).unwrap();
    b.apply(&op_a).unwrap();
    assert_eq!(a.to_vec(), b.to_vec());
}
