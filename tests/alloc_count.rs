//! Heap-allocation accounting for the identifier hot paths.
//!
//! The chunked, structurally shared `PosId` representation promises that
//! steady-state sequential appends cost O(1) heap allocations per operation:
//! deriving the next identifier reuses the shared prefix, the spine run
//! absorbs the new cell without per-element bookkeeping, and comparisons
//! against neighbouring cells never materialise the path. This test pins that
//! promise with a counting global allocator: the per-op allocation count must
//! stay flat as the document grows, and must stay under a small constant.
//!
//! The counting allocator requires `unsafe` (the `GlobalAlloc` contract);
//! that is why this lives in the umbrella crate's integration tests — the
//! library crates all `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use treedoc_core::{Sdis, SiteId, Treedoc, Udis};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocations per append in a `window`-op window starting after `prefix`
/// ops of warm-up on a fresh document.
fn sdis_appends_per_op(prefix: usize, window: usize) -> f64 {
    let mut doc = Treedoc::<char, Sdis>::new(SiteId::from_u64(1));
    for i in 0..prefix {
        doc.local_insert(i, 'a').unwrap();
    }
    let start = allocs();
    for i in 0..window {
        doc.local_insert(prefix + i, 'b').unwrap();
    }
    (allocs() - start) as f64 / window as f64
}

#[test]
fn sequential_append_allocations_are_constant_per_op() {
    // Measure identical windows at 4× different document sizes. Under the old
    // owned-Vec identifiers every derived id cloned the whole path, so the
    // deep window allocated ~4× more per op; the shared representation must
    // keep the two within noise of each other.
    let shallow = sdis_appends_per_op(2_048, 1_024);
    let deep = sdis_appends_per_op(8_192, 1_024);
    assert!(
        deep <= shallow * 1.5 + 1.0,
        "per-op allocations grew with document depth: {shallow:.2} at 2k ops \
         vs {deep:.2} at 8k ops"
    );
    // And the absolute count must be a small constant: a handful of chunk
    // nodes for the derived identifier plus run-tree bookkeeping — not
    // O(depth).
    assert!(
        deep <= 24.0,
        "sequential append allocates {deep:.2} times per op (want O(1), ≤ 24)"
    );
}

#[test]
fn remote_replay_allocations_are_constant_per_op() {
    // Generate an op log by sequential typing, then measure the replay side
    // (the anti-entropy / catch-up hot path) the same way.
    let mut src = Treedoc::<char, Udis>::new(SiteId::from_u64(1));
    let ops: Vec<_> = (0..8_192)
        .map(|i| src.local_insert(i, 'x').unwrap())
        .collect();

    let mut dst = Treedoc::<char, Udis>::new(SiteId::from_u64(2));
    for op in &ops[..2_048] {
        dst.apply(op).unwrap();
    }
    let start = allocs();
    for op in &ops[2_048..3_072] {
        dst.apply(op).unwrap();
    }
    let shallow = (allocs() - start) as f64 / 1_024.0;

    for op in &ops[3_072..7_168] {
        dst.apply(op).unwrap();
    }
    let start = allocs();
    for op in &ops[7_168..] {
        dst.apply(op).unwrap();
    }
    let deep = (allocs() - start) as f64 / 1_024.0;

    assert!(
        deep <= shallow * 1.5 + 1.0,
        "per-op replay allocations grew with document depth: {shallow:.2} \
         early vs {deep:.2} late"
    );
    assert!(
        deep <= 24.0,
        "remote replay allocates {deep:.2} times per op (want O(1), ≤ 24)"
    );
}
