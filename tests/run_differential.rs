//! Differential tests for the run-coalesced document store: the same random
//! operation schedules — local edits, remote replay, faulty delivery orders
//! from the replication testkit — are pushed through a run-coalesced
//! [`Treedoc`] and through the per-atom [`Tree`] reference, and every
//! observable must agree: content digests, `atom_at` on every index, and the
//! encoded wire bytes of the operation stream. Coalescing is a storage and
//! wire optimisation; it must never be visible in behaviour.

use proptest::prelude::*;
use treedoc_repro::core::{
    cell_hash, Op, PathArena, PosId, RefPosId, Sdis, SiteId, Tree, Treedoc, DIGEST_BASE,
};
use treedoc_repro::replication::sync::encode_cells;
use treedoc_repro::replication::testkit::faulty_schedule;
use treedoc_repro::replication::{
    decode_envelope, encode_envelope, CausalBuffer, CausalMessage, Envelope, OpBatch,
    ReplicatedDocument, VectorClock,
};

type SDoc = Treedoc<char, Sdis>;
type SOp = Op<char, Sdis>;

fn site(n: u64) -> SiteId {
    SiteId::from_u64(n)
}

/// The per-atom reference: every operation lands in a plain extended binary
/// tree, one major/mini node per atom, no coalescing anywhere.
struct Reference {
    tree: Tree<char, Sdis>,
    rev: u64,
}

impl Reference {
    fn new() -> Self {
        Reference {
            tree: Tree::new(),
            rev: 0,
        }
    }

    fn apply(&mut self, op: &SOp) {
        self.rev += 1;
        match op {
            Op::Insert { id, atom } => self.tree.insert(id, *atom, self.rev).unwrap(),
            Op::Delete { id } => {
                self.tree.delete(id, self.rev).unwrap();
            }
        }
    }
}

/// Every observable the two representations share must agree.
fn assert_matches_reference(doc: &SDoc, reference: &Reference) {
    assert_eq!(doc.to_vec(), reference.tree.to_vec());
    assert_eq!(doc.len(), reference.tree.live_len());
    for index in 0..doc.len() {
        assert_eq!(
            doc.store().atom_at(index),
            reference.tree.atom_at(index),
            "atom_at({index}) diverged"
        );
        assert_eq!(
            doc.store().id_of_live_index(index),
            reference.tree.id_of_live_index(index),
            "id_of_live_index({index}) diverged"
        );
    }
    assert!(doc.store().atom_at(doc.len()).is_none());
    doc.check_invariants().unwrap();
    reference.tree.check_invariants().unwrap();
}

#[derive(Debug, Clone)]
enum Edit {
    Insert(usize, char),
    Delete(usize),
}

fn arb_edits(n: usize) -> impl Strategy<Value = Vec<Edit>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<usize>(), proptest::char::range('a', 'z')).prop_map(|(i, c)| Edit::Insert(i, c)),
            any::<usize>().prop_map(Edit::Delete),
        ],
        0..60,
    )
    .prop_map(move |mut edits| {
        edits.truncate(n);
        edits
    })
}

fn apply_edits(doc: &mut SDoc, edits: &[Edit]) -> Vec<SOp> {
    let mut ops = Vec::new();
    for e in edits {
        match e {
            Edit::Insert(i, c) => {
                let idx = i % (doc.len() + 1);
                ops.push(doc.local_insert(idx, *c).unwrap());
            }
            Edit::Delete(i) => {
                if !doc.is_empty() {
                    ops.push(doc.local_delete(i % doc.len()).unwrap());
                }
            }
        }
    }
    ops
}

/// Rewrites every identifier in an op stream through `f`, leaving the
/// operations otherwise untouched. Used to rebuild the same schedule with
/// identifiers from a different construction route (reference vector,
/// arena interning) and pin that the route is observably invisible.
fn map_ids(ops: &[SOp], mut f: impl FnMut(&PosId<Sdis>) -> PosId<Sdis>) -> Vec<SOp> {
    ops.iter()
        .map(|op| match op {
            Op::Insert { id, atom } => Op::Insert {
                id: f(id),
                atom: *atom,
            },
            Op::Delete { id } => Op::Delete { id: f(id) },
        })
        .collect()
}

/// Stamps `ops` the way a replica would: one sender, own component
/// incremented per op.
fn stamp(sender: SiteId, ops: &[SOp]) -> Vec<CausalMessage<SOp>> {
    let mut clock = VectorClock::new();
    ops.iter()
        .map(|op| {
            clock.increment(sender);
            CausalMessage {
                sender,
                clock: clock.clone(),
                payload: op.clone(),
            }
        })
        .collect()
}

proptest! {
    /// A random local edit script leaves the run-coalesced store and the
    /// per-atom reference observably identical, and a second run-coalesced
    /// replica replaying the ops remotely agrees with both.
    #[test]
    fn local_edits_match_per_atom_reference(edits in arb_edits(60)) {
        let mut doc = SDoc::new(site(1));
        let mut reference = Reference::new();
        let mut remote = SDoc::new(site(2));

        let ops = apply_edits(&mut doc, &edits);
        for op in &ops {
            reference.apply(op);
            remote.apply(op).unwrap();
        }

        assert_matches_reference(&doc, &reference);
        assert_matches_reference(&remote, &reference);
        prop_assert_eq!(doc.digest(), remote.digest());
    }

    /// The operation stream of a run-coalesced session survives the wire
    /// bit-exactly: encode → decode → re-encode is the identity on bytes,
    /// and the decoded operations drive the per-atom reference to the same
    /// document.
    #[test]
    fn wire_bytes_are_canonical_and_lossless(edits in arb_edits(50)) {
        let mut doc = SDoc::new(site(1));
        let ops = apply_edits(&mut doc, &edits);
        let entries: Vec<(u64, CausalMessage<SOp>)> =
            stamp(site(1), &ops).into_iter().map(|m| (0, m)).collect();
        let envelope = Envelope::OpBatch(OpBatch { entries: entries.clone() });

        let bytes = encode_envelope(&envelope);
        let decoded: Envelope<SOp> = decode_envelope(&bytes).unwrap();
        prop_assert_eq!(&encode_envelope(&decoded), &bytes, "re-encode changed bytes");
        let Envelope::OpBatch(batch) = decoded else { panic!("batch decodes as batch") };
        prop_assert_eq!(&batch.entries, &entries);

        let mut reference = Reference::new();
        let mut replica = SDoc::new(site(2));
        for (_, msg) in &batch.entries {
            reference.apply(&msg.payload);
            replica.apply(&msg.payload).unwrap();
        }
        assert_matches_reference(&replica, &reference);
        prop_assert_eq!(replica.to_vec(), doc.to_vec());
    }

    /// Two sites edit concurrently; their stamped histories are scrambled
    /// into a duplicating, fully shuffled delivery schedule by the testkit.
    /// Delivered through the causal buffer, the run-coalesced replica and
    /// the per-atom reference still agree — and match an in-order replica.
    #[test]
    fn faulty_delivery_matches_per_atom_reference(
        edits_a in arb_edits(25),
        edits_b in arb_edits(25),
        seed in any::<u64>(),
    ) {
        let seed_doc: Vec<char> = "common ground".chars().collect();
        let mut a = SDoc::from_atoms(site(1), &seed_doc);
        let mut b = SDoc::from_atoms(site(2), &seed_doc);
        let mut history = stamp(site(1), &apply_edits(&mut a, &edits_a));
        history.extend(stamp(site(2), &apply_edits(&mut b, &edits_b)));

        // No drops (nothing retransmits here), 30% duplicates, full shuffle.
        let schedule = faulty_schedule(&history, seed, 0.0, 0.3);

        let mut doc = SDoc::from_atoms(site(3), &seed_doc);
        let mut reference = Reference::new();
        for (id, atom) in doc.to_identified_vec() {
            reference.rev += 1;
            let rev = reference.rev;
            reference.tree.insert(&id, atom, rev).unwrap();
        }
        let mut buffer: CausalBuffer<SOp> = CausalBuffer::new();
        for msg in schedule {
            for delivered in buffer.receive(msg) {
                doc.apply(&delivered.payload).unwrap();
                reference.apply(&delivered.payload);
            }
        }

        prop_assert_eq!(buffer.pending_len(), 0, "hold-back queue must drain");
        assert_matches_reference(&doc, &reference);

        // An in-order replica sees the same document (delivery order is
        // invisible), so the digest ties all three representations together.
        let mut in_order = SDoc::from_atoms(site(4), &seed_doc);
        for msg in &history {
            in_order.apply(&msg.payload).unwrap();
        }
        prop_assert_eq!(doc.digest(), in_order.digest());
    }

    /// The incremental merkle digest cached in the `RunTree` aggregates
    /// equals a from-scratch rehash of the cell stream at every point of a
    /// random edit/flatten schedule — flattening rewrites every identifier,
    /// so it exercises the digest maintenance far harder than edits alone.
    #[test]
    fn incremental_digest_equals_rehash_under_edits_and_flattens(
        schedule in proptest::collection::vec((arb_edits(15), any::<bool>()), 1..5),
    ) {
        let mut doc = SDoc::new(site(1));
        for (edits, flatten) in &schedule {
            apply_edits(&mut doc, edits);
            prop_assert_eq!(doc.store().digest(), rehash(&doc));
            if *flatten && !doc.is_empty() {
                doc.flatten_all().unwrap();
                prop_assert_eq!(doc.store().digest(), rehash(&doc));
            }
        }
    }

    /// Digest equality ⇔ identical wire bytes: a replica that applied the
    /// same operations reports the same digest and encodes the same cell
    /// stream bit-for-bit; a replica missing a suffix disagrees on both.
    /// The digest is a sound and (collision-aside) complete stand-in for
    /// comparing full states on the wire.
    #[test]
    fn digest_equality_iff_identical_state_bytes(
        edits in arb_edits(40),
        dropped in any::<usize>(),
    ) {
        let seed_doc: Vec<char> = "common ground".chars().collect();
        let mut doc = SDoc::from_atoms(site(1), &seed_doc);
        let ops = apply_edits(&mut doc, &edits);

        // Full replay: digests agree and so do the encoded state bytes.
        let mut full = SDoc::from_atoms(site(2), &seed_doc);
        for op in &ops {
            full.apply(op).unwrap();
        }
        prop_assert_eq!(doc.store().digest(), full.store().digest());
        prop_assert_eq!(state_bytes(&doc), state_bytes(&full));

        // Partial replay: a causally closed prefix. SDIS keeps tombstones,
        // so every missing insert or delete leaves a visible hole in the
        // cell set — digest and bytes must both notice, together.
        let kept = if ops.is_empty() { 0 } else { dropped % ops.len() };
        let mut partial = SDoc::from_atoms(site(3), &seed_doc);
        for op in &ops[..kept] {
            partial.apply(op).unwrap();
        }
        let digests_agree = partial.store().digest() == doc.store().digest();
        let bytes_agree = state_bytes(&partial) == state_bytes(&doc);
        prop_assert_eq!(digests_agree, bytes_agree);
        prop_assert_eq!(digests_agree, kept == ops.len());

        // Flattening both full copies rewrites every identifier the same
        // canonical way, so equality of digest and bytes survives it.
        if !doc.is_empty() {
            doc.flatten_all().unwrap();
            full.flatten_all().unwrap();
            prop_assert_eq!(doc.store().digest(), rehash(&doc));
            prop_assert_eq!(doc.store().digest(), full.store().digest());
            prop_assert_eq!(state_bytes(&doc), state_bytes(&full));
        }
    }

    /// The chunked, structurally shared identifiers produced by a real edit
    /// schedule order exactly as the owned `Vec<PathElem>` reference
    /// representation orders them — pairwise across the whole document, and
    /// unchanged by arena interning. Document order is strictly increasing
    /// under both.
    #[test]
    fn id_total_order_matches_vec_reference(edits in arb_edits(40)) {
        let mut doc = SDoc::new(site(1));
        apply_edits(&mut doc, &edits);
        let ids: Vec<_> = doc
            .to_identified_vec()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let refs: Vec<RefPosId<Sdis>> = ids.iter().map(RefPosId::from_pos_id).collect();
        let mut arena: PathArena<Sdis> = PathArena::new();
        let interned: Vec<_> = ids.iter().map(|id| arena.intern(id)).collect();

        for (i, (a, ra)) in ids.iter().zip(&refs).enumerate() {
            prop_assert_eq!(&interned[i], a, "interning changed identifier {}", i);
            for (j, (b, rb)) in ids.iter().zip(&refs).enumerate() {
                let expect = ra.cmp(rb);
                prop_assert_eq!(
                    a.cmp(b), expect,
                    "chunked order diverged from reference at ({}, {})", i, j
                );
                prop_assert_eq!(
                    interned[i].cmp(b), expect,
                    "interned order diverged from reference at ({}, {})", i, j
                );
            }
        }
        // Live identifiers in document order are strictly increasing, so the
        // agreement above pins the total order the document actually uses.
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    /// The identifier representation never reaches the wire: an op stream
    /// whose identifiers were rebuilt element-by-element from the reference
    /// vector (fresh chains, zero structural sharing) or deduplicated through
    /// a [`PathArena`] encodes to the exact same envelope bytes as the
    /// original chunk-shared stream.
    #[test]
    fn wire_bytes_identical_across_id_representations(edits in arb_edits(40)) {
        let mut doc = SDoc::new(site(1));
        let ops = apply_edits(&mut doc, &edits);
        let encode = |ops: &[SOp]| {
            let entries: Vec<(u64, CausalMessage<SOp>)> =
                stamp(site(1), ops).into_iter().map(|m| (0, m)).collect();
            encode_envelope(&Envelope::OpBatch(OpBatch { entries }))
        };
        let bytes = encode(&ops);

        let rebuilt = map_ids(&ops, |id| RefPosId::from_pos_id(id).to_pos_id());
        let mut arena: PathArena<Sdis> = PathArena::new();
        let interned = map_ids(&ops, |id| arena.intern(id));
        prop_assert_eq!(&encode(&rebuilt), &bytes, "reference-built ids changed the wire");
        prop_assert_eq!(&encode(&interned), &bytes, "arena-interned ids changed the wire");

        let decoded: Envelope<SOp> = decode_envelope(&bytes).unwrap();
        prop_assert_eq!(&encode_envelope(&decoded), &bytes, "re-encode changed bytes");
    }

    /// Replaying the same schedule with identifiers from each construction
    /// route — chunk-shared originals, reference-vector rebuilds, and
    /// arena-interned copies — yields replicas with identical content,
    /// identical `RunTree` digests and identical canonical state bytes.
    #[test]
    fn digests_identical_across_id_representations(edits in arb_edits(40)) {
        let mut doc = SDoc::new(site(1));
        let ops = apply_edits(&mut doc, &edits);

        let mut via_reference = SDoc::new(site(2));
        for op in map_ids(&ops, |id| RefPosId::from_pos_id(id).to_pos_id()) {
            via_reference.apply(&op).unwrap();
        }
        let mut arena: PathArena<Sdis> = PathArena::new();
        let mut via_arena = SDoc::new(site(3));
        for op in map_ids(&ops, |id| arena.intern(id)) {
            via_arena.apply(&op).unwrap();
        }

        prop_assert_eq!(via_reference.to_vec(), doc.to_vec());
        prop_assert_eq!(via_arena.to_vec(), doc.to_vec());
        prop_assert_eq!(doc.digest(), via_reference.digest());
        prop_assert_eq!(doc.digest(), via_arena.digest());
        prop_assert_eq!(doc.store().digest(), rehash(&via_reference));
        prop_assert_eq!(state_bytes(&via_reference), state_bytes(&doc));
        prop_assert_eq!(state_bytes(&via_arena), state_bytes(&doc));
    }
}

/// From-scratch reference rehash: fold every stored cell (with its
/// materialised identifier) through the same polynomial the cached
/// aggregates maintain incrementally — see `treedoc_core::hash`.
fn rehash(doc: &SDoc) -> u64 {
    doc.store()
        .cells_in_range(None, None)
        .iter()
        .fold(0u64, |digest, (id, content)| {
            digest
                .wrapping_mul(DIGEST_BASE)
                .wrapping_add(cell_hash(id, content))
        })
}

/// Canonical state bytes: the full cell stream through the sync wire codec
/// (the exact bytes a `SyncRuns` leaf exchange would carry).
fn state_bytes(doc: &SDoc) -> Vec<u8> {
    encode_cells(&doc.store().cells_in_range(None, None))
}
