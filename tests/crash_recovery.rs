//! Integration tests for the durability subsystem: crash/restart in the
//! simulator, the digest-equality acceptance criterion, flatten-commit WAL
//! compaction, and recovery through the real file backend.

use treedoc_repro::prelude::*;
use treedoc_repro::storage::DecodeError;

#[test]
fn crashed_run_matches_the_crash_free_digest() {
    // The acceptance cell: a session in which a replica crashes mid-run and
    // recovers from its DocStore converges to the same digest as the same
    // session without the crash.
    let crashed = crash_recovery_demo(42, true);
    let clean = crash_recovery_demo(42, false);
    assert!(crashed.converged, "{crashed:?}");
    assert!(clean.converged, "{clean:?}");
    assert_eq!(crashed.final_digest, clean.final_digest, "{crashed:?}");
    assert!(crashed.snapshot_hit && crashed.wal_records_replayed > 0);
    assert!(
        crashed.lost_edit_recovered,
        "an edit whose every network copy was dropped survives only through \
         the WAL: {crashed:?}"
    );
}

#[test]
fn randomised_crash_scenarios_converge_with_recovery_accounting() {
    for seed in [1, 7, 2026] {
        let report = treedoc_repro::sim::run(&Scenario {
            sites: 4,
            edits_per_site: 40,
            // Checkpoints land at the end of rounds 2 and 5; crashing at
            // round 4 guarantees a non-empty WAL tail to replay.
            snapshot_cadence: Some(3),
            seed,
            ..Scenario::crash_faulty(2, 4, 6)
        });
        assert!(report.converged, "seed {seed}: {report:?}");
        assert_eq!(report.crashes, 1, "seed {seed}");
        assert_eq!(report.snapshot_hits, 1, "seed {seed}");
        assert!(report.wal_records_replayed > 0, "seed {seed}: {report:?}");
        assert!(report.recovered_bytes > 0, "seed {seed}: {report:?}");
    }
}

#[test]
fn flatten_commit_truncates_the_wal_to_post_epoch_records() {
    // Direct assertion of the compaction invariant on a live store: after a
    // committed flatten, every surviving WAL record carries the new epoch.
    let sites = [SiteId::from_u64(1), SiteId::from_u64(2)];
    let seed: Vec<String> = (0..6).map(|i| format!("seed {i}")).collect();
    let mut a = Replica::new(
        sites[0],
        Treedoc::<String, Sdis>::from_atoms(sites[0], &seed),
    );
    let mut b = Replica::new(
        sites[1],
        Treedoc::<String, Sdis>::from_atoms(sites[1], &seed),
    );
    a.attach_store(DocStore::in_memory()).unwrap();
    b.attach_store(DocStore::in_memory()).unwrap();

    for k in 0..5 {
        let op = a
            .doc_mut()
            .local_insert(k, format!("pre-flatten {k}"))
            .unwrap();
        let env = a.stamp_envelope(op);
        let _ = b.receive_any(env);
    }
    let ack = Envelope::Ack {
        from: b.site(),
        clock: b.clock().clone(),
    };
    let _ = a.receive_any(ack);
    assert!(
        a.store()
            .unwrap()
            .wal_entries()
            .unwrap()
            .entries
            .iter()
            .any(|e| e.epoch == 0),
        "pre-flatten records sit in the WAL at epoch 0"
    );

    let propose = a
        .propose_flatten(Vec::new(), CommitProtocol::TwoPhase)
        .expect("quiescent proposer votes Yes");
    let txn = propose.proposal.txn;
    let (_, reply) = b.receive_any(Envelope::FlattenPropose(propose));
    assert!(reply.is_some());
    a.finish_flatten(txn, true);
    let _ = b.receive_any(Envelope::FlattenDecision(
        treedoc_repro::replication::FlattenDecision {
            txn,
            kind: treedoc_repro::replication::DecisionKind::Commit,
        },
    ));

    for r in [&mut a, &mut b] {
        assert_eq!(r.flatten_epoch(), 1);
        let replayed = r.store().unwrap().wal_entries().unwrap();
        assert!(
            replayed.entries.is_empty(),
            "the commit checkpoint empties the WAL: {replayed:?}"
        );
    }
    // Post-epoch traffic lands in the truncated WAL tagged with epoch 1.
    let op = a
        .doc_mut()
        .local_insert(0, "post-flatten".to_string())
        .unwrap();
    let env = a.stamp_envelope(op);
    let _ = b.receive_any(env);
    for r in [&a, &b] {
        let replayed = r.store().unwrap().wal_entries().unwrap();
        assert!(!replayed.entries.is_empty());
        assert!(
            replayed.entries.iter().all(|e| e.epoch >= 1),
            "post-compaction WAL contains only post-epoch records: {replayed:?}"
        );
    }
}

#[test]
fn recovery_crosses_the_wal_format_version_boundary() {
    // A log written across the codec upgrade: a legacy JSON (v1) record
    // prefix followed by binary (v2) records. Recovery must replay both
    // generations record by record and land on the digest the live replica
    // had — no migration step, no truncation.
    let site = SiteId::from_u64(1);
    let edit = |r: &mut Replica<Treedoc<String, Sdis>>, text: String| {
        let len = r.doc().len();
        let op = r.doc_mut().local_insert(len, text).unwrap();
        let _ = r.stamp(op);
    };

    // Pre-upgrade session: every record journaled as JSON v1.
    let mut replica = Replica::new(site, Treedoc::<String, Sdis>::new(site));
    replica
        .attach_store_with(DocStore::in_memory(), WalCodec::JsonV1)
        .unwrap();
    for k in 0..6 {
        edit(&mut replica, format!("pre-upgrade {k}"));
    }
    let store = replica.detach_store().unwrap();

    // The upgraded process recovers the v1 log and keeps journaling — in
    // binary — into the same WAL.
    let (mut replica, report) = Replica::<Treedoc<String, Sdis>>::recover(store).unwrap();
    assert_eq!(report.wal_records_replayed, 6);
    for k in 0..6 {
        edit(&mut replica, format!("post-upgrade {k}"));
    }
    let live_digest = replica.digest();

    // The WAL now genuinely holds both generations.
    let wal = replica.store().unwrap().wal_entries().unwrap();
    let leads: Vec<u8> = wal.entries.iter().map(|e| e.payload[0]).collect();
    assert_eq!(leads.iter().filter(|&&b| b == b'{').count(), 6);
    assert_eq!(leads.iter().filter(|&&b| b == 0x02).count(), 6);

    // A second crash replays the mixed log to the identical digest.
    let store = replica.detach_store().unwrap();
    let (recovered, report) = Replica::<Treedoc<String, Sdis>>::recover(store).unwrap();
    assert_eq!(report.wal_records_replayed, 12);
    assert_eq!(recovered.digest(), live_digest);
}

#[test]
fn recovery_works_through_the_real_file_backend() {
    let dir = std::env::temp_dir().join(format!("treedoc-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let site = SiteId::from_u64(1);
    let digest = {
        let backend = FileBackend::open(&dir).unwrap();
        let mut replica = Replica::new(site, Treedoc::<String, Sdis>::new(site));
        replica
            .attach_store(DocStore::new(backend).unwrap())
            .unwrap();
        for k in 0..8 {
            let op = replica
                .doc_mut()
                .local_insert(k, format!("durable line {k}"))
                .unwrap();
            let _ = replica.stamp(op);
        }
        replica.digest()
        // The replica (and its file handles) drop here: the "process" dies.
    };

    let backend = FileBackend::open(&dir).unwrap();
    let (recovered, report) =
        Replica::<Treedoc<String, Sdis>>::recover(DocStore::new(backend).unwrap()).unwrap();
    assert_eq!(recovered.digest(), digest, "{report:?}");
    assert!(report.snapshot_hit);
    assert_eq!(report.wal_records_replayed, 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_fall_back_and_corrupt_trees_are_diagnosed() {
    // A store whose newest snapshot is corrupt falls back to the previous
    // one; a DiskImage with a broken structure reports a typed error.
    let site = SiteId::from_u64(3);
    let mut replica = Replica::new(site, Treedoc::<String, Sdis>::new(site));
    replica.attach_store(DocStore::in_memory()).unwrap();
    let op = replica
        .doc_mut()
        .local_insert(0, "kept".to_string())
        .unwrap();
    let _ = replica.stamp(op);
    replica.persist_checkpoint().unwrap();
    let digest = replica.digest();
    let store = replica.detach_store().unwrap();
    let (recovered, report) = Replica::<Treedoc<String, Sdis>>::recover(store).unwrap();
    assert_eq!(recovered.digest(), digest);
    assert_eq!(report.corrupt_snapshots_skipped, 0);

    let doc: Treedoc<String, Sdis> = Treedoc::from_atoms(site, &["a".to_string(), "b".to_string()]);
    let mut image = DiskImage::encode(&doc.tree());
    image.structure.truncate(2);
    match image.decode::<Sdis>() {
        Err(DecodeError::BadRleRun | DecodeError::TruncatedStructure) => {}
        other => panic!("expected a typed decode error, got {other:?}"),
    }
}
