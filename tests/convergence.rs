//! Cross-crate integration tests: CRDT convergence under causal delivery,
//! concurrent editing, partitions, and mixed local/remote activity.

use treedoc_repro::core::{Op, Sdis, SiteId, Treedoc, Udis};
use treedoc_repro::replication::Replica;
use treedoc_repro::sim::{run, Scenario};

type SDoc = Treedoc<String, Sdis>;
type UDoc = Treedoc<String, Udis>;

fn site(n: u64) -> SiteId {
    SiteId::from_u64(n)
}

#[test]
fn two_replicas_converge_after_interleaved_editing() {
    let seed: Vec<String> = (0..20).map(|i| format!("line {i}")).collect();
    let mut a = SDoc::from_atoms(site(1), &seed);
    let mut b = SDoc::from_atoms(site(2), &seed);

    let mut ops_a: Vec<Op<String, Sdis>> = Vec::new();
    let mut ops_b: Vec<Op<String, Sdis>> = Vec::new();
    for round in 0..30 {
        ops_a.push(
            a.local_insert(round % (a.len() + 1), format!("a{round}"))
                .unwrap(),
        );
        if b.len() > 2 {
            ops_b.push(b.local_delete(round % b.len()).unwrap());
        }
        ops_b.push(
            b.local_insert(round % (b.len() + 1), format!("b{round}"))
                .unwrap(),
        );
    }
    for op in &ops_b {
        a.apply(op).unwrap();
    }
    for op in &ops_a {
        b.apply(op).unwrap();
    }
    assert_eq!(a.to_vec(), b.to_vec());
    a.check_invariants().unwrap();
    b.check_invariants().unwrap();
}

#[test]
fn udis_and_sdis_replicas_agree_on_content_order() {
    // The two disambiguator designs are different types (identifiers differ),
    // but replaying the same *local* edit script must give the same text.
    let mut s = SDoc::new(site(1));
    let mut u = UDoc::new(site(1));
    let script: Vec<(usize, Option<String>)> = (0..60)
        .map(|k| {
            if k % 5 == 4 {
                (k % 7, None)
            } else {
                (k % (k + 1), Some(format!("line {k}")))
            }
        })
        .collect();
    for (idx, action) in script {
        match action {
            Some(text) => {
                let i = idx.min(s.len());
                s.local_insert(i, text.clone()).unwrap();
                u.local_insert(i, text).unwrap();
            }
            None => {
                if !s.is_empty() {
                    let i = idx % s.len();
                    s.local_delete(i).unwrap();
                    u.local_delete(i).unwrap();
                }
            }
        }
    }
    assert_eq!(s.to_vec(), u.to_vec());
    assert_eq!(u.stats().tombstones, 0, "UDIS never stores tombstones");
    assert!(
        s.stats().tombstones > 0,
        "SDIS keeps tombstones until a flatten"
    );
}

#[test]
fn causal_delivery_handles_out_of_order_messages_across_three_sites() {
    let mut replicas: Vec<Replica<SDoc>> = (1..=3)
        .map(|n| Replica::new(site(n), SDoc::new(site(n))))
        .collect();

    // Site 1 creates content, site 2 reacts to it, site 3 receives
    // everything in the *wrong* order and must hold messages back.
    let op1 = replicas[0]
        .doc_mut()
        .local_insert(0, "root".to_string())
        .unwrap();
    let m1 = replicas[0].stamp(op1);
    replicas[1].receive(m1.clone());
    let op2 = replicas[1]
        .doc_mut()
        .local_insert(1, "reply".to_string())
        .unwrap();
    let m2 = replicas[1].stamp(op2);
    let op3 = replicas[1].doc_mut().local_delete(0).unwrap();
    let m3 = replicas[1].stamp(op3);

    // Deliver to site 3 in reverse causal order.
    assert_eq!(replicas[2].receive(m3.clone()), 0);
    assert_eq!(replicas[2].receive(m2.clone()), 0);
    assert_eq!(
        replicas[2].receive(m1.clone()),
        3,
        "the whole chain flushes at once"
    );
    // And to site 1 (which already has its own op).
    replicas[0].receive(m2);
    replicas[0].receive(m3);

    let reference = replicas[1].doc().to_vec();
    assert_eq!(replicas[0].doc().to_vec(), reference);
    assert_eq!(replicas[2].doc().to_vec(), reference);
    assert_eq!(reference, vec!["reply".to_string()]);
}

#[test]
fn simulated_sessions_converge_under_partitions_and_reordering() {
    for seed in [1, 7, 2024] {
        let report = run(&Scenario {
            sites: 4,
            edits_per_site: 80,
            delete_ratio: 0.35,
            partition_first_site: true,
            seed,
            ..Default::default()
        });
        assert!(report.converged, "seed {seed}: {report:?}");
        assert_eq!(report.ops_generated, 4 * 80);
    }
}

#[test]
fn balanced_and_unbalanced_replicas_interoperate() {
    // One replica uses the §4.1 balancing strategies, the other does not;
    // they still converge because balancing only changes which fresh
    // identifiers a replica picks for its own inserts.
    let seed: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
    let mut plain = SDoc::from_atoms(site(1), &seed);
    let mut balanced = Treedoc::<String, Sdis>::from_atoms_with_config(
        site(2),
        &seed,
        treedoc_repro::core::TreedocConfig::balanced(),
    );
    let mut ops_a = Vec::new();
    let mut ops_b = Vec::new();
    for k in 0..40 {
        ops_a.push(plain.local_insert(plain.len(), format!("p{k}")).unwrap());
        ops_b.push(
            balanced
                .local_insert(balanced.len(), format!("b{k}"))
                .unwrap(),
        );
    }
    for op in &ops_b {
        plain.apply(op).unwrap();
    }
    for op in &ops_a {
        balanced.apply(op).unwrap();
    }
    assert_eq!(plain.to_vec(), balanced.to_vec());
}
