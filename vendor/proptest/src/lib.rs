//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators this workspace's property tests use —
//! integer/char ranges, tuples, `prop_map`, `collection::vec`, `option::of`,
//! `any`, a tiny character-class regex for string strategies, `prop_oneof!`
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros. Each test
//! runs a fixed number of random cases from a deterministic seed; there is no
//! shrinking, so a failure reports the raw counterexample via the assertion
//! message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Number of random cases run per property.
pub const CASES: u64 = 128;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case did not meet a `prop_assume!` precondition; it is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Runs `case` [`CASES`] times with deterministic seeds, panicking on the
/// first failure. Rejections (`prop_assume!`) are skipped.
pub fn run_cases<F: FnMut(&mut TestRng) -> Result<(), TestCaseError>>(name: &str, mut case: F) {
    for case_index in 0..CASES {
        let mut rng = TestRng::seed_from_u64(0x70726F70 ^ case_index);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest `{name}` failed at case {case_index}: {message}");
            }
        }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`
/// (without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Erases the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

impl<T: rand::SampleUniform + 'static> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Extends tuple strategies up to arity 7, mirroring upstream proptest's
/// blanket tuple support.
macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// A `&str` strategy interprets the string as a (tiny) regex and generates
/// matching strings. Supported: literal characters, `[a-z0-9]`-style classes
/// and `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

/// Uniform values over a type's whole domain, from [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing uniformly distributed values of `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies, mirroring `proptest::option`.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `None` half the time and `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod char {
    //! Character strategies, mirroring `proptest::char`.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform characters in `[lo, hi]` (by code point).
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        CharRange { lo, hi }
    }

    /// Output of [`range`].
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: ::core::primitive::char,
        hi: ::core::primitive::char,
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;

        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
            loop {
                let code = rng.gen_range(self.lo as u32..=self.hi as u32);
                if let Some(c) = ::core::primitive::char::from_u32(code) {
                    return c;
                }
            }
        }
    }
}

pub mod strategy {
    //! Strategy plumbing, mirroring `proptest::strategy`.

    use super::{BoxedStrategy, Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        alternatives: Vec<BoxedStrategy<T>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} alternatives)", self.alternatives.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union over `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
            Union { alternatives }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.gen_range(0..self.alternatives.len());
            self.alternatives[pick].generate(rng)
        }
    }
}

// ---------------------------------------------------------------------------
// Tiny regex generator for `&str` strategies
// ---------------------------------------------------------------------------

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let atom: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed `[` in regex strategy")
                    + i;
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                assert!(
                    !"(){}|.^$*+?".contains(c),
                    "unsupported regex syntax `{c}` in strategy pattern"
                );
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed `{` in regex strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition bound"),
                        hi.parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n: usize = body.parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            let pick = rng.gen_range(0..atom.len());
            out.push(atom[pick]);
        }
    }
    out
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            for code in lo..=hi {
                if let Some(c) = char::from_u32(code) {
                    set.push(c);
                }
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in regex strategy");
    set
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::Union;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Strategy, TestCaseError};
}

/// Declares property tests. Each function body runs for many random cases;
/// the user-supplied attributes (including `#[test]`) are passed through.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($alternative)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{:?} != {:?} ({} != {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Skips cases that do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strategy_matches_class() {
        super::run_cases("regex", |rng| {
            let s = super::Strategy::generate(&"[a-d]{0,3}", rng);
            prop_assert!(s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
            Ok(())
        });
    }

    proptest! {
        #[test]
        fn macro_round_trip(x in 0u32..10, maybe in crate::option::of(0u8..3)) {
            prop_assert!(x < 10);
            if let Some(m) = maybe {
                prop_assert!(m < 3);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_tuples(v in crate::collection::vec(
            prop_oneof![
                (any::<usize>(), crate::char::range('a', 'c')).prop_map(|(_, c)| c),
                crate::char::range('x', 'z'),
            ],
            0..10,
        )) {
            prop_assert!(v.iter().all(|c| "abcxyz".contains(*c)));
        }
    }
}
