//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in this container, so the derives parse the
//! item declaration straight from the [`proc_macro::TokenStream`] with a small
//! hand-rolled recogniser. It understands the shapes this workspace uses:
//! unit/tuple/named structs and enums whose variants are unit, tuple or named,
//! all with optional generic parameters (bounds are copied verbatim and the
//! relevant serde trait bound is appended to every type parameter).
//!
//! The generated impls target the vendored `serde` shim's value-tree model:
//! named structs become maps, tuple structs become arrays (newtypes collapse
//! to their inner value) and enums are externally tagged, matching serde-json
//! conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the shim's `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    params: Vec<Param>,
    where_clause: String,
    shape: Shape,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Param {
    Lifetime(String),
    Const { decl: String, name: String },
    Type { name: String, bounds: String },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    let is_enum = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracketed group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                i += 1;
                break false;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                i += 1;
                break true;
            }
            other => panic!("serde_derive: unexpected token before item keyword: {other}"),
        }
    };

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;

    let params = if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        parse_generics(&tokens, &mut i)
    } else {
        Vec::new()
    };

    // Everything between the generics and the body is either a where clause,
    // a tuple-struct field list, or the terminating `;` of a unit struct.
    let mut where_clause = String::new();
    let mut tuple_group: Option<TokenStream> = None;
    let mut body_group: Option<TokenStream> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body_group = Some(g.stream());
                i += 1;
                break;
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Parenthesis && tuple_group.is_none() =>
            {
                tuple_group = Some(g.stream());
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                i += 1;
                break;
            }
            other => {
                if !where_clause.is_empty() {
                    where_clause.push(' ');
                }
                where_clause.push_str(&other.to_string());
                i += 1;
            }
        }
    }
    let _ = i;

    let shape = if is_enum {
        let body = body_group.expect("serde_derive: enum without body");
        Shape::Enum(parse_variants(body))
    } else if let Some(body) = body_group {
        Shape::Struct(Fields::Named(parse_named_fields(body)))
    } else if let Some(fields) = tuple_group {
        Shape::Struct(Fields::Tuple(count_tuple_fields(fields)))
    } else {
        Shape::Struct(Fields::Unit)
    };

    Item {
        name,
        params,
        where_clause,
        shape,
    }
}

/// Parses the generic parameter list, starting just after the opening `<`.
/// Leaves `i` pointing past the matching `>`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<Param> {
    let mut params = Vec::new();
    loop {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '>' => {
                *i += 1;
                return params;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: `'a` (+ optional bounds, unsupported).
                *i += 1;
                let lt = match &tokens[*i] {
                    TokenTree::Ident(id) => format!("'{id}"),
                    other => panic!("serde_derive: expected lifetime name, found {other}"),
                };
                *i += 1;
                params.push(Param::Lifetime(lt));
            }
            TokenTree::Ident(id) if id.to_string() == "const" => {
                // `const N: usize`
                let mut decl = String::from("const");
                *i += 1;
                let name = match &tokens[*i] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde_derive: expected const param name, found {other}"),
                };
                decl.push(' ');
                decl.push_str(&name);
                *i += 1;
                decl.push_str(&collect_until_param_end(tokens, i));
                params.push(Param::Const { decl, name });
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                *i += 1;
                let mut bounds = String::new();
                if matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == ':') {
                    *i += 1;
                    bounds = collect_until_param_end(tokens, i);
                    bounds = bounds.trim_start_matches(':').trim().to_string();
                    // Strip a default (`= Foo`) if one trails the bounds.
                    if let Some(pos) = bounds.find('=') {
                        bounds.truncate(pos);
                        bounds = bounds.trim().to_string();
                    }
                }
                params.push(Param::Type { name, bounds });
            }
            other => panic!("serde_derive: unexpected token in generics: {other}"),
        }
    }
}

/// Collects tokens until a top-level `,` or the closing `>` of the parameter
/// list, tracking `<`/`>` nesting. Leaves `i` at the delimiter.
fn collect_until_param_end(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    let mut prev_dash = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                out.push('<');
                prev_dash = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                if prev_dash {
                    out.push('>'); // part of `->`
                } else if depth == 0 {
                    return out;
                } else {
                    depth -= 1;
                    out.push('>');
                }
                prev_dash = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                return out;
            }
            other => {
                prev_dash = matches!(other, TokenTree::Punct(p) if p.as_char() == '-');
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&other.to_string());
            }
        }
        *i += 1;
    }
    out
}

/// Parses `ident: Type, ...` bodies, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // attribute
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                assert!(
                    matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
                    "serde_derive: expected `:` after field name"
                );
                i += 1;
                skip_type(&tokens, &mut i);
            }
            other => panic!("serde_derive: unexpected token in fields: {other}"),
        }
    }
    fields
}

/// Skips a type expression up to (and including) the next top-level comma.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    let mut prev_dash = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                prev_dash = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                if !prev_dash {
                    depth -= 1;
                }
                prev_dash = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            other => {
                prev_dash = matches!(other, TokenTree::Punct(p) if p.as_char() == '-');
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0usize;
    let mut prev_dash = false;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                prev_dash = false;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                if !prev_dash {
                    depth -= 1;
                }
                prev_dash = false;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                prev_dash = false;
            }
            other => {
                prev_dash = matches!(other, TokenTree::Punct(p) if p.as_char() == '-');
                trailing_comma = false;
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // attribute
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g.stream()));
                        i += 1;
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        i += 1;
                        f
                    }
                    _ => Fields::Unit,
                };
                // Skip an explicit discriminant (`= expr`) if present.
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    i += 1;
                    skip_type(&tokens, &mut i);
                }
                variants.push(Variant { name, fields });
            }
            other => panic!("serde_derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Renders `impl<...>` generics, appending `extra_bound` to each type param.
fn impl_generics(params: &[Param], extra_bound: &str) -> String {
    if params.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = params
        .iter()
        .map(|p| match p {
            Param::Lifetime(lt) => lt.clone(),
            Param::Const { decl, .. } => decl.clone(),
            Param::Type { name, bounds } => {
                if bounds.is_empty() {
                    format!("{name}: {extra_bound}")
                } else {
                    format!("{name}: {bounds} + {extra_bound}")
                }
            }
        })
        .collect();
    format!("<{}>", rendered.join(", "))
}

/// Renders the `<A, B, N>` argument list for the implemented type.
fn type_args(params: &[Param]) -> String {
    if params.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = params
        .iter()
        .map(|p| match p {
            Param::Lifetime(lt) => lt.clone(),
            Param::Const { name, .. } => name.clone(),
            Param::Type { name, .. } => name.clone(),
        })
        .collect();
    format!("<{}>", rendered.join(", "))
}

fn named_fields_to_map(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let ig = impl_generics(&item.params, "::serde::Serialize");
    let ta = type_args(&item.params);
    let name = &item.name;
    let wc = &item.where_clause;

    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) => named_fields_to_map(fields, "self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|idx| format!("f{idx}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|idx| format!("::serde::Serialize::to_value(f{idx})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inner = named_fields_to_map(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), {inner})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };

    format!(
        "impl{ig} ::serde::Serialize for {name}{ta} {wc} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_from_map(type_path: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 ::serde::value::get_field({map_expr}, \"{f}\"))?"
            )
        })
        .collect();
    format!(
        "::std::result::Result::Ok({type_path} {{ {} }})",
        inits.join(", ")
    )
}

fn tuple_fields_from_array(type_path: &str, n: usize, value_expr: &str, label: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|idx| format!("::serde::Deserialize::from_value(&arr[{idx}])?"))
        .collect();
    format!(
        "{{ let arr = {value_expr}.as_array()\
          .ok_or_else(|| ::serde::Error::custom(\"expected array for `{label}`\"))?;\n\
          if arr.len() != {n} {{\n\
          return ::std::result::Result::Err(::serde::Error::custom(\
          \"wrong tuple arity for `{label}`\"));\n\
          }}\n\
          ::std::result::Result::Ok({type_path}({}))\n\
          }}",
        inits.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let ig = impl_generics(&item.params, "::serde::Deserialize");
    let ta = type_args(&item.params);
    let name = &item.name;
    let wc = &item.where_clause;

    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => {
            format!("{{ let _ = value; ::std::result::Result::Ok({name}) }}")
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => tuple_fields_from_array(name, *n, "value", name),
        Shape::Struct(Fields::Named(fields)) => format!(
            "{{ let map = value.as_map()\
             .ok_or_else(|| ::serde::Error::custom(\"expected map for `{name}`\"))?;\n\
             {} }}",
            named_fields_from_map(name, fields, "map")
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    let build = match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => tuple_fields_from_array(
                            &format!("{name}::{vname}"),
                            *n,
                            "inner",
                            &format!("{name}::{vname}"),
                        ),
                        Fields::Named(fields) => format!(
                            "{{ let vmap = inner.as_map()\
                             .ok_or_else(|| ::serde::Error::custom(\
                             \"expected map for `{name}::{vname}`\"))?;\n\
                             {} }}",
                            named_fields_from_map(&format!("{name}::{vname}"), fields, "vmap")
                        ),
                    };
                    format!("\"{vname}\" => {build},")
                })
                .collect();

            let mut arms = String::new();
            if !unit_arms.is_empty() {
                arms.push_str(&format!(
                    "::serde::Value::Str(s) => match s.as_str() {{\n{}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown `{name}` variant `{{other}}`\"))),\n}},\n",
                    unit_arms.join("\n")
                ));
            }
            if !payload_arms.is_empty() {
                arms.push_str(&format!(
                    "::serde::Value::Map(pairs) if pairs.len() == 1 => {{\n\
                     let (tag, inner) = &pairs[0];\n\
                     match tag.as_str() {{\n{}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown `{name}` variant `{{other}}`\"))),\n}}\n}},\n",
                    payload_arms.join("\n")
                ));
            }
            format!(
                "match value {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"invalid `{name}` value {{other:?}}\"))),\n}}"
            )
        }
    };

    format!(
        "impl{ig} ::serde::Deserialize for {name}{ta} {wc} {{\n\
         fn from_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
