//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` shim's [`Value`] tree to JSON text and parses
//! JSON text back into it, providing the `to_string` / `to_string_pretty` /
//! `from_str` entry points this workspace uses. Maps always carry string keys
//! (the shim encodes non-string-keyed maps as arrays of pairs), so rendering
//! is total.

use serde::{Serialize, Value};
use std::fmt;

/// Error produced while rendering or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: serde::de::DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

/// Parses a JSON string into a raw [`Value`] tree.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                render(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (idx, (key, item)) in pairs.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid surrogate pair"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
        let o: Option<bool> = from_str("null").unwrap();
        assert_eq!(o, None);
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn pretty_renders_objects() {
        let value = Value::Map(vec![("k".to_string(), Value::UInt(7))]);
        let mut out = String::new();
        render(&value, &mut out, Some(2), 0);
        assert_eq!(out, "{\n  \"k\": 7\n}");
    }

    #[test]
    fn surrogate_pairs() {
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "\u{1F600}");
        // A high surrogate followed by a non-low-surrogate is an error, not
        // a panic or a silently wrong character.
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud800\"").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
        let f: f64 = from_str("2.5e1").unwrap();
        assert_eq!(f, 25.0);
    }
}
