//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] is a growable byte buffer implementing [`BufMut`];
//! [`Bytes`] is a read cursor over an owned buffer implementing [`Buf`].
//! Multi-byte integers are big-endian, matching the real crate's `put_u32` /
//! `get_u32` family. Only the surface the storage crate uses is provided;
//! zero-copy sharing is deliberately not reproduced (readers own their data).

use std::ops::Deref;

/// A growable, writable byte buffer (`Vec<u8>` underneath).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.inner.extend_from_slice(slice);
    }

    /// Freezes the buffer into a readable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner }
    }
}

/// Write interface for byte sinks (big-endian integer encodings).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.inner.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

/// An owned, readable byte buffer with a consuming cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Total length of the underlying buffer (unread portion is
    /// [`Buf::remaining`]).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new `Bytes` over a sub-range of the unread bytes (the real
    /// crate shares the allocation; this shim copies).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let unread = &self.data[self.pos..];
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => unread.len(),
        };
        Bytes::from(&unread[start..end])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Bytes {
        Bytes::from(buf.inner)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Read interface for byte sources (big-endian integer decodings).
///
/// Reads panic when fewer than the requested bytes remain, matching the real
/// crate; callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// True while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The unread portion as a slice.
    fn chunk(&self) -> &[u8];

    /// Skips `count` bytes.
    fn advance(&mut self, count: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let value = self.chunk()[0];
        self.advance(1);
        value
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Fills `target` from the unread bytes.
    fn copy_to_slice(&mut self, target: &mut [u8]) {
        assert!(
            self.remaining() >= target.len(),
            "copy_to_slice past end of buffer"
        );
        target.copy_from_slice(&self.chunk()[..target.len()]);
        self.advance(target.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.remaining(), "advance past end of buffer");
        self.pos += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_integers() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_slice(b"xyz");

        let mut read = buf.freeze();
        assert_eq!(read.get_u8(), 7);
        assert_eq!(read.get_u16(), 300);
        assert_eq!(read.get_u32(), 70_000);
        assert_eq!(read.get_u64(), 1 << 40);
        let mut tail = [0u8; 3];
        read.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(read.remaining(), 0);
    }
}
