//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen_range` (half-open and inclusive integer ranges), `gen_bool` and
//! `gen::<T>()`. The generator is xoshiro256**, seeded through SplitMix64 —
//! deterministic for a given seed, which is all the simulations and trace
//! corpora here require.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// A deterministic pseudo-random generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.state = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (empty ranges panic).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<T: RngCore> Rng for T {}

pub mod seq {
    //! Sequence-related extensions, mirroring `rand::seq`.

    use super::Rng;

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Types samplable uniformly over their whole domain (the shim's analogue of
/// the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over an interval, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start <= end, "cannot sample empty range");
        if start == end {
            return start;
        }
        // Widen the upper bound to the next float up (sign-aware; a bare
        // `to_bits() + 1` moves the wrong way for non-positive bounds).
        let end_up = if end > 0.0 {
            f64::from_bits(end.to_bits() + 1)
        } else if end < 0.0 {
            f64::from_bits(end.to_bits() - 1)
        } else {
            f64::from_bits(1) // smallest positive subnormal
        };
        Self::sample_half_open(rng, start, end_up).min(end)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. A single blanket impl per
/// range shape keeps type inference identical to the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0..=2usize);
            assert!(y <= 2);
        }
    }

    #[test]
    fn inclusive_float_ranges_cover_non_positive_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..=-1.0f64);
            assert!((-2.0..=-1.0).contains(&x), "{x} out of [-2, -1]");
            let y = rng.gen_range(-1.0..=0.0f64);
            assert!((-1.0..=0.0).contains(&y), "{y} out of [-1, 0]");
        }
        assert_eq!(rng.gen_range(5.0..=5.0f64), 5.0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        use crate::seq::SliceRandom;
        let shuffled = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..100).collect();
            v.shuffle(&mut rng);
            v
        };
        let a = shuffled(7);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "still a permutation");
        assert_ne!(a, sorted, "100 elements virtually never shuffle to sorted");
        assert_eq!(a, shuffled(7));
        assert_ne!(a, shuffled(8));
    }
}
