//! Deserialization helpers mirroring `serde::de`.

pub use crate::Deserialize;

/// Marker for types that deserialize without borrowing, mirroring
/// `serde::de::DeserializeOwned`. The shim's [`Deserialize`] is always owned,
/// so every implementor qualifies.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}
