//! Offline stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no access to crates.io, so this
//! crate provides the small slice of the serde surface the workspace actually
//! uses: the [`Serialize`] / [`Deserialize`] traits (re-exported together with
//! the derive macros of the sibling `serde_derive` shim) and a self-describing
//! [`Value`] tree that `serde_json` renders to and parses from.
//!
//! The data model intentionally mirrors serde-json conventions (structs as
//! maps, externally tagged enums, newtypes as their inner value) so that the
//! JSON this workspace emits looks like what the real serde stack would
//! produce. Maps with non-string keys are encoded as arrays of `[key, value]`
//! pairs. Swapping the real `serde`/`serde_json` back in only requires
//! restoring the crates.io entries in `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod value;

pub use value::Value;

use std::fmt;

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message (mirrors `serde::de::Error::custom`).
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to build `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(Error::custom(format!(
                        "expected single-character string, got {s:?}"
                    ))),
                }
            }
            other => Err(Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(Into::into)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        Ok(items.into_iter().collect())
    }
}

impl<T: Serialize + Eq + std::hash::Hash, S: std::hash::BuildHasher> Serialize
    for std::collections::HashSet<T, S>
{
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        Ok(items.into_iter().collect())
    }
}

impl<T: ?Sized> Serialize for std::marker::PhantomData<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: ?Sized> Deserialize for std::marker::PhantomData<T> {
    fn from_value(_value: &Value) -> Result<Self, Error> {
        Ok(std::marker::PhantomData)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_map()
            .ok_or_else(|| Error::custom("expected map for Duration"))?;
        let secs = u64::from_value(value::get_field(map, "secs"))?;
        let nanos = u32::from_value(value::get_field(map, "nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
