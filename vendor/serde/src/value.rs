//! The self-describing value tree the [`Serialize`](crate::Serialize) /
//! [`Deserialize`](crate::Deserialize) traits convert through.

/// A dynamically typed value, the common currency between `Serialize`,
/// `Deserialize` and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map with string keys (a JSON object). Insertion order is kept.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the contained map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Returns the contained items if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the contained string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Shared `null` used for absent struct fields, so that `Option` fields
/// tolerate missing keys the way `#[serde(default)]` would.
pub static NULL: Value = Value::Null;

/// Looks up `key` in a map body, falling back to [`NULL`] when absent.
pub fn get_field<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}
