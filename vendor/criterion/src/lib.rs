//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the bench suite uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Benchmarks really execute
//! and a median wall-clock time per iteration is printed, but there is no
//! statistical analysis, HTML report or command-line filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns its argument, preventing the optimiser from deleting the
/// computation that produced it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How [`Bencher::iter_batched`] amortises setup cost. The shim runs one
/// setup per iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark group (recorded but unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed over by benchmark functions.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_median: Duration::ZERO,
        }
    }

    /// Runs `routine` repeatedly, recording the median wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        self.record(times);
    }

    /// Runs `setup` then `routine` repeatedly, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort();
        self.last_median = times
            .get(times.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Sets the sample count (builder style, for `criterion_group!` configs).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Accepted for config-form compatibility; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the measurement window (accepted, unused).
    pub fn measurement_time(self, _duration: Duration) -> Self {
        self
    }

    /// Sets the warm-up window (accepted, unused).
    pub fn warm_up_time(self, _duration: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        body(&mut bencher);
        report(name, bencher.last_median);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Sets the measurement window (accepted, unused).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up window (accepted, unused).
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Annotates expected throughput (accepted, unused).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        body(&mut bencher);
        report(&format!("{}/{}", self.name, id), bencher.last_median);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples);
        body(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), bencher.last_median);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, median: Duration) {
    println!("bench {name:<60} median {median:?}");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
